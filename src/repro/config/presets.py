"""Paper-exact parameter presets (paper Section VI-A).

The evaluation section fixes a concrete system: a 2 MW-peak datacenter
(grid cap ``Pgrid = 2 MWh`` per one-hour slot), a UPS battery sized in
minutes of peak demand with ``Bcmax = Bdmax = 0.5 MWh``, charge cost
``Cb = $0.1``, efficiencies ``ηc = 0.8, ηd = 1.25``, a 31-day horizon of
one-hour slots, and a day-ahead long-term market (``T = 24``).  These
builders produce that system so every experiment and test starts from
the same baseline the paper used.
"""

from __future__ import annotations

from repro.config.control import ObjectiveMode, SmartDPSSConfig
from repro.config.system import SystemConfig
from repro.exceptions import ConfigurationError

#: Battery size used in most paper experiments (minutes of peak demand).
PAPER_BATTERY_MINUTES = 15.0

#: Peak datacenter demand in MW; the paper clips demand at Pgrid = 2 MW.
PAPER_PEAK_DEMAND_MW = 2.0

#: UPS purchase price and cycle life behind ``Cb = Cbuy / Ccycle = 0.1``.
PAPER_UPS_CYCLE_LIFE = 5000
PAPER_UPS_PURCHASE_COST = 500.0


def paper_system_config(battery_minutes: float = PAPER_BATTERY_MINUTES,
                        days: int = 31,
                        fine_slots_per_coarse: int = 24,
                        peak_demand_mw: float = PAPER_PEAK_DEMAND_MW,
                        cycle_budget: int | None = None,
                        ) -> SystemConfig:
    """Build the physical system of the paper's evaluation.

    Parameters
    ----------
    battery_minutes:
        UPS capacity in minutes of peak demand; the paper uses
        ``{0, 15, 30}`` (Fig. 7).
    days:
        Horizon length in days (the paper replays one month of traces).
    fine_slots_per_coarse:
        Coarse slot length ``T`` in hours; 24 models the day-ahead
        market, and Fig. 6(c,d) sweeps ``T ∈ [3, 144]``.
    peak_demand_mw:
        Peak demand the battery sizing convention refers to.
    cycle_budget:
        Optional ``Nmax`` (eq. 9); the paper leaves it implicit, so the
        default is no budget.
    """
    total_hours = days * 24
    if total_hours % fine_slots_per_coarse != 0:
        raise ConfigurationError(
            f"horizon of {total_hours} hours is not divisible into coarse "
            f"slots of T={fine_slots_per_coarse} hours")
    base = SystemConfig(
        fine_slots_per_coarse=fine_slots_per_coarse,
        num_coarse_slots=total_hours // fine_slots_per_coarse,
        slot_hours=1.0,
        p_max=200.0,
        p_grid=peak_demand_mw * 1.0,
        s_max=2.0 * peak_demand_mw + 2.0,
        b_charge_max=0.5,
        b_discharge_max=0.5,
        eta_c=0.8,
        eta_d=1.25,
        battery_op_cost=PAPER_UPS_PURCHASE_COST / PAPER_UPS_CYCLE_LIFE,
        cycle_budget=cycle_budget,
        d_dt_max=1.0,
        s_dt_max=2.0,
        waste_penalty=1.0,
    )
    return base.with_battery_minutes(battery_minutes, peak_demand_mw)


def paper_controller_config(v: float = 1.0,
                            epsilon: float = 0.5,
                            objective_mode: ObjectiveMode | str = ObjectiveMode.DERIVED,
                            use_long_term_market: bool = True,
                            use_battery: bool = True,
                            ) -> SmartDPSSConfig:
    """Build the controller configuration of the paper's evaluation.

    Defaults match the setting most figures share
    (``V = 1, ε = 0.5``, both markets, battery enabled).
    """
    return SmartDPSSConfig(
        v=v,
        epsilon=epsilon,
        objective_mode=ObjectiveMode(objective_mode),
        use_long_term_market=use_long_term_market,
        use_battery=use_battery,
    )
