"""Property-based tests: UPS battery invariants (eqs. 3, 7, 8).

Under *any* sequence of charge/discharge/settle requests, the battery
must stay inside ``[Bmin, Bmax]``, never move more than the per-slot
rate caps allow, and conserve energy under the efficiency model.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.battery.model import UpsBattery
from repro.config.system import SystemConfig

request_amounts = st.lists(
    st.tuples(st.sampled_from(["charge", "discharge", "settle"]),
              st.floats(min_value=-2.0, max_value=2.0,
                        allow_nan=False)),
    min_size=1, max_size=60)

battery_shapes = st.tuples(
    st.floats(min_value=0.1, max_value=5.0),    # capacity span
    st.floats(min_value=0.0, max_value=0.5),    # reserve
    st.floats(min_value=0.05, max_value=1.0),   # charge rate cap
    st.floats(min_value=0.05, max_value=1.0),   # discharge rate cap
    st.floats(min_value=0.3, max_value=1.0),    # eta_c
    st.floats(min_value=1.0, max_value=2.0),    # eta_d
)


def build_battery(shape) -> UpsBattery:
    span, reserve, c_cap, d_cap, eta_c, eta_d = shape
    system = SystemConfig(b_min=reserve, b_max=reserve + span,
                          b_charge_max=c_cap, b_discharge_max=d_cap,
                          eta_c=eta_c, eta_d=eta_d)
    return UpsBattery(system)


@settings(max_examples=120, deadline=None)
@given(shape=battery_shapes, actions=request_amounts)
def test_level_always_in_range(shape, actions):
    battery = build_battery(shape)
    system = battery.system
    for kind, amount in actions:
        if kind == "charge":
            battery.charge(abs(amount))
        elif kind == "discharge":
            battery.discharge(abs(amount))
        else:
            battery.settle(amount)
        assert system.b_min - 1e-9 <= battery.level \
            <= system.b_max + 1e-9


@settings(max_examples=120, deadline=None)
@given(shape=battery_shapes, actions=request_amounts)
def test_rate_caps_respected(shape, actions):
    battery = build_battery(shape)
    system = battery.system
    for kind, amount in actions:
        if kind == "charge":
            action = battery.charge(abs(amount))
        elif kind == "discharge":
            action = battery.discharge(abs(amount))
        else:
            action = battery.settle(amount)
        assert action.charge <= system.b_charge_max + 1e-12
        assert action.discharge <= system.b_discharge_max + 1e-12
        assert action.charge == 0.0 or action.discharge == 0.0


@settings(max_examples=120, deadline=None)
@given(shape=battery_shapes, actions=request_amounts)
def test_energy_ledger_consistent(shape, actions):
    """Level always equals init + ηc·Σcharge − ηd·Σdischarge."""
    battery = build_battery(shape)
    system = battery.system
    level = battery.level
    for kind, amount in actions:
        if kind == "charge":
            action = battery.charge(abs(amount))
        elif kind == "discharge":
            action = battery.discharge(abs(amount))
        else:
            action = battery.settle(amount)
        level += system.eta_c * action.charge \
            - system.eta_d * action.discharge
        assert battery.level == pytest_approx(level)


def pytest_approx(value, tol=1e-9):
    import pytest
    return pytest.approx(value, abs=tol)


@settings(max_examples=80, deadline=None)
@given(shape=battery_shapes,
       amount=st.floats(min_value=0.0, max_value=3.0))
def test_accepted_never_exceeds_requested(shape, amount):
    battery = build_battery(shape)
    assert battery.charge(amount).charge <= amount + 1e-12
    assert battery.discharge(amount).discharge <= amount + 1e-12
