"""Per-slot series recorder."""

import numpy as np
import pytest

from repro.sim.recorder import SERIES_NAMES, Recorder
from repro.exceptions import ConfigurationError


class TestRecorder:
    def test_records_in_order(self):
        recorder = Recorder(3)
        recorder.record(cost_total=1.0)
        recorder.record(cost_total=2.0)
        assert recorder.cursor == 2
        assert np.allclose(recorder.series("cost_total"), [1.0, 2.0])

    def test_missing_keys_default_zero(self):
        recorder = Recorder(1)
        recorder.record(grt=0.5)
        assert recorder.series("waste")[0] == 0.0

    def test_unknown_key_rejected(self):
        recorder = Recorder(1)
        with pytest.raises(KeyError):
            recorder.record(unknown_series=1.0)

    def test_overflow_rejected(self):
        recorder = Recorder(1)
        recorder.record()
        with pytest.raises(IndexError):
            recorder.record()

    def test_series_truncated_to_cursor(self):
        recorder = Recorder(5)
        recorder.record(cost_total=1.0)
        assert recorder.series("cost_total").size == 1

    def test_series_read_only(self):
        recorder = Recorder(2)
        recorder.record(cost_total=1.0)
        with pytest.raises(ValueError):
            recorder.series("cost_total")[0] = 9.0

    def test_as_dict_covers_all_series(self):
        recorder = Recorder(1)
        recorder.record()
        assert set(recorder.as_dict()) == set(SERIES_NAMES)

    def test_unknown_series_lookup_rejected(self):
        with pytest.raises(KeyError):
            Recorder(1).series("nope")

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            Recorder(0)
