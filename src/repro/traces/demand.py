"""Google-cluster-like synthetic datacenter power demand.

The paper replays a Google cluster power trace whose workload mix it
describes as "delay-sensitive Websearch and Webmail services and
delay-tolerant Mapreduce workload" (Section VI-A), scaled so peaks stay
below ``Pgrid``.  The trace itself is proprietary, so this module builds
the two aggregate series SmartDPSS consumes from that description:

* **delay-sensitive** ``dds(τ)`` — a static infrastructure floor plus
  two interactive components: Websearch (strong daytime diurnal cycle,
  weekend dip) and Webmail (flatter, morning/evening humps), both with
  persistent multiplicative noise;
* **delay-tolerant** ``ddt(τ)`` — MapReduce-style batch arrivals: a
  compound process of Poisson job submissions with heavy-tailed
  (lognormal) per-job energy, with a submission-rate bump in working
  hours; per-slot arrivals clip at the model cap ``Ddtmax``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.traces.base import slot_time_indices


@dataclass
class DemandChunkState:
    """Carry-over state for chunked delay-sensitive generation.

    The interactive noise is AR(1) in log space; streaming generation
    (:mod:`repro.fleet.stream`) threads this state between consecutive
    chunks so the concatenation of chunk outputs is bit-identical to
    one full-horizon pass, regardless of how the horizon is chunked.
    """

    log_noise: float = 0.0

#: Hour-of-day multiplier for Websearch-style interactive load.
_SEARCH_SHAPE = np.array([
    0.55, 0.48, 0.44, 0.42, 0.44, 0.52,
    0.66, 0.82, 0.95, 1.05, 1.12, 1.16,
    1.18, 1.17, 1.15, 1.14, 1.15, 1.18,
    1.20, 1.16, 1.05, 0.92, 0.78, 0.64,
])

#: Hour-of-day multiplier for Webmail-style load (morning/evening humps).
_MAIL_SHAPE = np.array([
    0.70, 0.62, 0.58, 0.56, 0.58, 0.68,
    0.92, 1.12, 1.20, 1.12, 1.02, 0.98,
    0.96, 0.94, 0.92, 0.94, 1.00, 1.10,
    1.18, 1.22, 1.15, 1.02, 0.90, 0.78,
])

#: Hour-of-day submission-rate multiplier for batch (MapReduce) jobs.
_BATCH_SHAPE = np.array([
    1.15, 1.20, 1.25, 1.25, 1.20, 1.10,
    0.95, 0.85, 0.90, 1.00, 1.05, 1.05,
    1.00, 1.00, 1.05, 1.05, 1.00, 0.95,
    0.90, 0.90, 0.95, 1.00, 1.05, 1.10,
])


@dataclass(frozen=True)
class DemandModel:
    """Parameters of the synthetic demand mix.

    Attributes
    ----------
    search_peak_mw / mail_peak_mw:
        Approximate daytime peaks of the two interactive services.
    static_floor_mw:
        Always-on infrastructure draw (cooling fans, network, idle).
    batch_jobs_per_hour:
        Mean MapReduce submission rate.
    batch_job_energy_mwh:
        Median per-job energy; job sizes are lognormal around it.
    batch_sigma:
        Lognormal shape of per-job energy (heavy tail).
    d_dt_max:
        Per-slot cap on delay-tolerant arrivals [paper ``Ddtmax``].
    weekend_factor:
        Interactive-load multiplier on Saturdays/Sundays.
    noise_rho / noise_sigma:
        AR(1) persistence and scale of the interactive noise.
    start_weekday:
        Weekday of slot 0 (0 = Monday; Jan 1, 2012 → 6).
    """

    search_peak_mw: float = 0.85
    mail_peak_mw: float = 0.45
    static_floor_mw: float = 0.25
    batch_jobs_per_hour: float = 4.0
    batch_job_energy_mwh: float = 0.12
    batch_sigma: float = 0.7
    d_dt_max: float = 1.0
    weekend_factor: float = 0.85
    noise_rho: float = 0.7
    noise_sigma: float = 0.06
    start_weekday: int = 6
    slot_hours: float = 1.0

    def __post_init__(self) -> None:
        positives = {
            "search_peak_mw": self.search_peak_mw,
            "mail_peak_mw": self.mail_peak_mw,
            "batch_jobs_per_hour": self.batch_jobs_per_hour,
            "batch_job_energy_mwh": self.batch_job_energy_mwh,
            "d_dt_max": self.d_dt_max,
        }
        for name, value in positives.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.static_floor_mw < 0:
            raise ConfigurationError(
                f"static floor must be >= 0, got {self.static_floor_mw}")
        if not 0 < self.weekend_factor <= 1:
            raise ConfigurationError(
                f"weekend factor must be in (0, 1], got "
                f"{self.weekend_factor}")
        if not 0 <= self.noise_rho < 1:
            raise ConfigurationError(
                f"noise_rho must be in [0, 1), got {self.noise_rho}")
        if self.noise_sigma < 0 or self.batch_sigma < 0:
            raise ConfigurationError("noise scales must be >= 0")
        if not 0 <= self.start_weekday <= 6:
            raise ConfigurationError(
                f"start weekday must be in [0, 6], got {self.start_weekday}")
        if self.slot_hours <= 0:
            raise ConfigurationError(
                f"slot_hours must be > 0, got {self.slot_hours}")


class GoogleClusterDemandGenerator:
    """Generates ``(dds, ddt)`` series from a :class:`DemandModel`."""

    def __init__(self, model: DemandModel | None = None):
        self.model = model or DemandModel()

    def _weekday(self, slot: int) -> int:
        day = int((slot * self.model.slot_hours) // 24)
        return (self.model.start_weekday + day) % 7

    def _hour(self, slot: int) -> int:
        return int((slot * self.model.slot_hours) % 24)

    def delay_sensitive(self, n_slots: int,
                        rng: np.random.Generator) -> np.ndarray:
        """Sample the delay-sensitive series ``dds(τ)`` (MWh/slot)."""
        return self.delay_sensitive_chunk(0, n_slots, rng,
                                          DemandChunkState())

    def delay_sensitive_chunk(self, start_slot: int, n_slots: int,
                              rng: np.random.Generator,
                              state: DemandChunkState) -> np.ndarray:
        """Sample ``dds`` for slots ``[start_slot, start_slot + n_slots)``.

        ``state`` carries the AR(1) noise level across chunks and is
        updated in place; draws come one per slot from ``rng``, so
        sequential chunks from one dedicated generator concatenate to
        exactly the full-horizon series (chunk-size invariant).
        """
        model = self.model
        series = np.empty(n_slots)
        log_noise = state.log_noise
        scale = model.noise_sigma * math.sqrt(1.0 - model.noise_rho ** 2)
        for index in range(n_slots):
            slot = start_slot + index
            hour = self._hour(slot)
            weekend = self._weekday(slot) >= 5
            factor = model.weekend_factor if weekend else 1.0
            interactive = (model.search_peak_mw * _SEARCH_SHAPE[hour]
                           + model.mail_peak_mw * _MAIL_SHAPE[hour]) * factor
            log_noise = (model.noise_rho * log_noise
                         + scale * rng.standard_normal())
            multiplier = math.exp(log_noise - model.noise_sigma ** 2 / 2.0)
            power = model.static_floor_mw + interactive * multiplier
            series[index] = max(0.0, power * model.slot_hours)
        state.log_noise = log_noise
        return series

    def delay_tolerant(self, n_slots: int,
                       rng: np.random.Generator) -> np.ndarray:
        """Sample the delay-tolerant series ``ddt(τ)`` (MWh/slot).

        A compound Poisson-lognormal arrival process: bursty (many slots
        with little batch work, some with big submissions) yet with a
        stable hourly mean — the "arbitrary demand" the paper stresses.
        Per-slot arrivals clip at ``Ddtmax`` (constraint in Section
        II-A.2).
        """
        return self.delay_tolerant_chunk(0, n_slots, rng)

    def delay_tolerant_chunk(self, start_slot: int, n_slots: int,
                             rng: np.random.Generator) -> np.ndarray:
        """Sample ``ddt`` for slots ``[start_slot, start_slot + n_slots)``.

        The arrival process is memoryless across slots, so the only
        chunking requirement is a dedicated sequential ``rng``.
        """
        model = self.model
        series = np.empty(n_slots)
        log_median = math.log(model.batch_job_energy_mwh) \
            if model.batch_job_energy_mwh > 0 else 0.0
        for index in range(n_slots):
            hour = self._hour(start_slot + index)
            rate = (model.batch_jobs_per_hour * _BATCH_SHAPE[hour]
                    * model.slot_hours)
            n_jobs = rng.poisson(rate)
            if n_jobs == 0 or model.batch_job_energy_mwh == 0:
                series[index] = 0.0
                continue
            sizes = rng.lognormal(mean=log_median, sigma=model.batch_sigma,
                                  size=n_jobs)
            series[index] = min(float(sizes.sum()), model.d_dt_max)
        return series

    def generate(self, n_slots: int, rng: np.random.Generator,
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(dds, ddt)`` using sequential draws from ``rng``."""
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        sensitive = self.delay_sensitive(n_slots, rng)
        tolerant = self.delay_tolerant(n_slots, rng)
        return sensitive, tolerant

    # ------------------------------------------------------------------
    # Stream-family scalar references
    # ------------------------------------------------------------------
    #
    # The streamed trace family ("stream" recipes) uses a draw
    # discipline designed so every stochastic component can be batched
    # across slots with NumPy ``Generator`` calls that are
    # sequential-draw-identical to a scalar loop: the AR(1) noise takes
    # one ``standard_normal`` per slot (unchanged), while the compound
    # Poisson-lognormal arrivals split job *counts* and job *sizes*
    # into two substreams (a single-stream loop interleaves
    # variable-length draws and cannot be batched bit-identically).
    # The methods below are the per-slot reference loops for that
    # discipline; :class:`DemandTraceKernel` is the vectorized twin the
    # property tests compare against, bit for bit.

    def delay_sensitive_stream_chunk(self, start_slot: int, n_slots: int,
                                     rng: np.random.Generator,
                                     state: DemandChunkState) -> np.ndarray:
        """Stream-family scalar reference for ``dds`` chunks.

        Identical to :meth:`delay_sensitive_chunk` except the noise
        multiplier is exponentiated with :func:`numpy.exp` (the SIMD
        kernel's transcendental) instead of :func:`math.exp`, so the
        vectorized kernel can match it exactly on hardware where the
        two differ in the last ulp.
        """
        model = self.model
        series = np.empty(n_slots)
        log_noise = state.log_noise
        scale = model.noise_sigma * math.sqrt(1.0 - model.noise_rho ** 2)
        half_sig2 = model.noise_sigma ** 2 / 2.0
        for index in range(n_slots):
            slot = start_slot + index
            hour = self._hour(slot)
            weekend = self._weekday(slot) >= 5
            factor = model.weekend_factor if weekend else 1.0
            interactive = (model.search_peak_mw * _SEARCH_SHAPE[hour]
                           + model.mail_peak_mw * _MAIL_SHAPE[hour]) * factor
            log_noise = (model.noise_rho * log_noise
                         + scale * rng.standard_normal())
            multiplier = np.exp(log_noise - half_sig2)
            power = model.static_floor_mw + interactive * multiplier
            series[index] = max(0.0, power * model.slot_hours)
        state.log_noise = float(log_noise)
        return series

    def delay_tolerant_stream_chunk(self, start_slot: int, n_slots: int,
                                    count_rng: np.random.Generator,
                                    size_rng: np.random.Generator
                                    ) -> np.ndarray:
        """Stream-family scalar reference for ``ddt`` chunks.

        Job counts draw from ``count_rng`` (one Poisson per slot) and
        job sizes from ``size_rng`` (one lognormal per job), so the
        batched counts-then-split kernel consumes both substreams in
        exactly this order.  Per-slot totals accumulate left to right —
        the same addition order ``numpy.bincount`` uses.
        """
        model = self.model
        series = np.empty(n_slots)
        log_median = math.log(model.batch_job_energy_mwh) \
            if model.batch_job_energy_mwh > 0 else 0.0
        for index in range(n_slots):
            hour = self._hour(start_slot + index)
            rate = (model.batch_jobs_per_hour * _BATCH_SHAPE[hour]
                    * model.slot_hours)
            n_jobs = count_rng.poisson(rate)
            if n_jobs == 0 or model.batch_job_energy_mwh == 0:
                series[index] = 0.0
                continue
            sizes = size_rng.lognormal(mean=log_median,
                                       sigma=model.batch_sigma,
                                       size=n_jobs)
            total = 0.0
            for size in sizes.tolist():
                total += size
            series[index] = min(total, model.d_dt_max)
        return series


class DemandTraceKernel:
    """Vectorized demand generation for a batch of scenarios.

    Stacks ``B`` (possibly heterogeneous) :class:`DemandModel`
    parameter sets once, then emits whole ``(B, n_slots)`` blocks per
    call: the AR(1) noise draws one batched ``standard_normal(n)`` per
    scenario and scans the carry across slots (the recursion's FP
    order is exactly the scalar loop's), and the compound
    Poisson-lognormal arrivals draw per-slot counts in one
    ``poisson(rate_vec)`` call, all job sizes in one lognormal call,
    then split them back onto slots with ``bincount`` (sequential
    additions, matching the reference's left-to-right sums).

    Bit-identical to :meth:`GoogleClusterDemandGenerator.
    delay_sensitive_stream_chunk` /
    :meth:`~GoogleClusterDemandGenerator.delay_tolerant_stream_chunk`
    for any chunking (gated by ``tests/property/test_trace_kernels.py``).
    """

    def __init__(self, models: Sequence[DemandModel]):
        if not models:
            raise ConfigurationError("need at least one demand model")
        self.models = tuple(models)
        # Derived per-scenario constants use the same Python-scalar
        # arithmetic as the reference loops (``**`` and ``math.sqrt``
        # on floats), so no vector op can round differently.
        self._rho = np.array([m.noise_rho for m in models])
        self._scale = np.array(
            [m.noise_sigma * math.sqrt(1.0 - m.noise_rho ** 2)
             for m in models])
        self._half_sig2 = np.array(
            [m.noise_sigma ** 2 / 2.0 for m in models])
        self._search_peak = np.array([m.search_peak_mw for m in models])
        self._mail_peak = np.array([m.mail_peak_mw for m in models])
        self._floor = np.array([m.static_floor_mw for m in models])
        self._weekend_factor = np.array(
            [m.weekend_factor for m in models])
        self._slot_hours = np.array([m.slot_hours for m in models])
        self._jobs_per_hour = np.array(
            [m.batch_jobs_per_hour for m in models])
        self._batch_sigma = [m.batch_sigma for m in models]
        self._job_energy = [m.batch_job_energy_mwh for m in models]
        self._log_median = [
            math.log(m.batch_job_energy_mwh)
            if m.batch_job_energy_mwh > 0 else 0.0 for m in models]
        self._d_dt_max = np.array([m.d_dt_max for m in models])
        self._time_groups: dict[tuple[float, int], list[int]] = {}
        for index, model in enumerate(models):
            key = (model.slot_hours, model.start_weekday)
            self._time_groups.setdefault(key, []).append(index)

    @property
    def batch(self) -> int:
        return len(self.models)

    def _time_indices(self, start_slot: int, n_slots: int
                      ) -> tuple[np.ndarray, np.ndarray]:
        """``(B, n)`` hour indices and weekend masks per scenario."""
        hours = np.empty((self.batch, n_slots), dtype=np.int64)
        weekend = np.empty((self.batch, n_slots), dtype=bool)
        for (slot_hours, weekday), rows in self._time_groups.items():
            hour_row, weekend_row = slot_time_indices(
                start_slot, n_slots, slot_hours, weekday)
            hours[rows] = hour_row
            weekend[rows] = weekend_row
        return hours, weekend

    def sensitive_block(self, start_slot: int, n_slots: int,
                        rngs: Sequence[np.random.Generator],
                        log_noise: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """``(B, n)`` block of ``dds`` plus the updated AR(1) carry."""
        batch = self.batch
        draws = np.empty((batch, n_slots))
        for index, rng in enumerate(rngs):
            draws[index] = rng.standard_normal(n_slots)
        levels = np.empty((batch, n_slots))
        carry = np.asarray(log_noise, dtype=float)
        rho, scale = self._rho, self._scale
        for slot in range(n_slots):
            carry = rho * carry + scale * draws[:, slot]
            levels[:, slot] = carry
        multiplier = np.exp(levels - self._half_sig2[:, None])
        hours, weekend = self._time_indices(start_slot, n_slots)
        interactive = (self._search_peak[:, None] * _SEARCH_SHAPE[hours]
                       + self._mail_peak[:, None] * _MAIL_SHAPE[hours])
        factor = np.where(weekend, self._weekend_factor[:, None], 1.0)
        interactive = interactive * factor
        power = self._floor[:, None] + interactive * multiplier
        series = np.maximum(0.0, power * self._slot_hours[:, None])
        return series, carry

    def tolerant_block(self, start_slot: int, n_slots: int,
                       count_rngs: Sequence[np.random.Generator],
                       size_rngs: Sequence[np.random.Generator]
                       ) -> np.ndarray:
        """``(B, n)`` block of ``ddt`` via counts-then-split."""
        batch = self.batch
        hours, _ = self._time_indices(start_slot, n_slots)
        rate = (self._jobs_per_hour[:, None] * _BATCH_SHAPE[hours]
                * self._slot_hours[:, None])
        counts = np.empty((batch, n_slots), dtype=np.int64)
        for index, rng in enumerate(count_rngs):
            counts[index] = rng.poisson(rate[index])
        series = np.zeros((batch, n_slots))
        slot_ids = np.arange(n_slots)
        for index, rng in enumerate(size_rngs):
            total = int(counts[index].sum())
            if total == 0 or self._job_energy[index] == 0:
                continue
            sizes = rng.lognormal(mean=self._log_median[index],
                                  sigma=self._batch_sigma[index],
                                  size=total)
            series[index] = np.bincount(
                np.repeat(slot_ids, counts[index]), weights=sizes,
                minlength=n_slots)
        return np.minimum(series, self._d_dt_max[:, None])
