"""Policy-to-policy comparison metrics.

The paper reports results as *cost reductions* relative to baselines
(Fig. 9's y-axis is "percentage of DPSS operation cost reduction") and
as gaps to the offline optimum (Fig. 6a).  These helpers centralize
those computations so every experiment reports them identically.
"""

from __future__ import annotations

from repro.sim.results import SimulationResult
from repro.exceptions import ConfigurationError


def cost_reduction(result: SimulationResult,
                   baseline: SimulationResult) -> float:
    """Fractional cost saved relative to a baseline policy.

    ``0.12`` means 12% cheaper than the baseline; negative means more
    expensive.
    """
    base = baseline.time_average_cost
    if base == 0:
        raise ConfigurationError("baseline has zero cost; reduction undefined")
    return (base - result.time_average_cost) / base


def optimality_gap(result: SimulationResult,
                   offline: SimulationResult) -> float:
    """Fractional excess over the offline optimum (Fig. 6a's gap)."""
    opt = offline.time_average_cost
    if opt == 0:
        raise ConfigurationError("offline optimum has zero cost; gap undefined")
    return (result.time_average_cost - opt) / opt


def delay_cost_frontier(results: list[SimulationResult],
                        ) -> list[tuple[float, float]]:
    """(delay, cost) points sorted by delay — the paper's trade-off curve."""
    points = [(r.average_delay_slots, r.time_average_cost)
              for r in results]
    return sorted(points)
