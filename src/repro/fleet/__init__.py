"""Fleet subsystem: streamed scenario pipelines at sweep scale.

Everything the in-memory engines assume fits in RAM — full trace
horizons, per-slot series, one process — stops holding at 10⁴+-scenario
sweeps.  This package supplies the missing layers:

* :mod:`repro.fleet.stream` — chunked, seed-deterministic trace
  sources (``O(B · chunk)`` trace memory, bit-identical to full
  materialization for every chunk size);
* :mod:`repro.fleet.spec` — declarative, serializable
  :class:`ScenarioSpec` plus grid / product / random-sampling fleet
  generators;
* :mod:`repro.fleet.engine` — the chunk-at-a-time
  :class:`StreamingBatchSimulator` with O(B) result aggregation;
* :mod:`repro.fleet.runner` — :class:`FleetRunner` sharding whole
  vectorized batches across worker processes (also the engine behind
  ``simulate_many(..., executor="process")``);
* :mod:`repro.fleet.store` — append-only :class:`ResultStore` with
  seed-replicated aggregation back into
  :class:`~repro.sim.sweep.SweepTable`.

Command line::

    python -m repro.fleet run --demo v-sweep --scenarios 10000 --out out/
    python -m repro.fleet report --out out/

Telemetry quickstart — answer "where did the time go" for any run::

    runner = FleetRunner(specs, store=store, telemetry=True)
    runner.run()
    print(runner.last_manifest.render())   # per-stage breakdown

    # or from the shell (the manifest persists next to the results):
    #   python -m repro.fleet run --demo v-sweep --out out/ --telemetry
    #   python -m repro.fleet stats out/

Instrumentation (:mod:`repro.telemetry`) is explicitly passed down
the pipeline — runner → engine → controller → solvers — and records
are bit-identical with telemetry on or off: span timers only read the
monotonic clock, never numeric state.  Disabled (the default), every
instrumented site costs one attribute check.

The streamed path is gated by ``tests/equivalence/``: for identical
specs it is bit-identical to the in-memory batch engine (which is
itself bit-identical to the scalar reference engine).
"""

from repro.fleet.engine import (
    ScenarioMetrics,
    StreamingBatchSimulator,
    StreamRunSpec,
    simulate_stream,
)
from repro.fleet.runner import (
    FleetRunner,
    ShardOutcome,
    simulate_many_process,
)
from repro.fleet.spec import (
    ScenarioSpec,
    grid_specs,
    product_specs,
    sample_specs,
)
from repro.fleet.store import ResultStore
from repro.fleet.stream import (
    ArrayTraceStream,
    BatchTraceStream,
    StreamingPaperTraces,
    TraceStream,
)

__all__ = [
    "ArrayTraceStream",
    "BatchTraceStream",
    "FleetRunner",
    "ResultStore",
    "ScenarioMetrics",
    "ScenarioSpec",
    "ShardOutcome",
    "StreamRunSpec",
    "StreamingBatchSimulator",
    "StreamingPaperTraces",
    "TraceStream",
    "grid_specs",
    "product_specs",
    "sample_specs",
    "simulate_many_process",
    "simulate_stream",
]
