"""Trace-kernel benchmark: scalar loops vs vectorized batch kernels.

Two measurements, written to ``BENCH_traces.json`` at the repo root
(see benchmarks/README.md for how to read it):

1. **Chunked trace generation** — wall-clock to stream a ``B``-scenario
   batch over a 30-day horizon in fleet-sized windows, through the
   per-scenario scalar cursors (``StreamingPaperTraces.open``, the
   reference path) and through one ``BatchTraceStream`` cursor (the
   vectorized kernels).  Also timed per component (demand AR(1),
   compound-Poisson arrivals, solar Markov+AR(1), real-time prices,
   forward curve).  Acceptance: the batch path is **≥ 5×** the scalar
   path at ``B ≥ 64``.

2. **End-to-end streamed sweep** — the 10⁴-scenario demo fleet
   (``python -m repro.fleet run --demo v-sweep``) through
   ``FleetRunner`` with ``batch_traces=False`` (the PR-2 baseline
   configuration: identical math, per-scenario trace loops) and with
   the default kernel-backed loading.  Acceptance: **≥ 2×** end-to-end,
   with identical records (the bit-identity spot check runs on a
   subset; the full guarantee is ``tests/property/test_trace_kernels``
   plus the equivalence harness).

Run::

    PYTHONPATH=src python benchmarks/bench_traces.py            # full
    PYTHONPATH=src python benchmarks/bench_traces.py --quick    # small
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config.presets import paper_system_config  # noqa: E402
from repro.fleet.__main__ import build_demo_fleet  # noqa: E402
from repro.fleet.runner import FleetRunner  # noqa: E402
from repro.fleet.stream import (  # noqa: E402
    BatchTraceStream,
    StreamingPaperTraces,
)
from repro.rng import RngFactory  # noqa: E402
from repro.traces.demand import (  # noqa: E402
    DemandChunkState,
    DemandTraceKernel,
    GoogleClusterDemandGenerator,
)
from repro.traces.prices import (  # noqa: E402
    NyisoLikePriceGenerator,
    PriceChunkState,
    PriceTraceKernel,
)
from repro.traces.solar import (  # noqa: E402
    MidcLikeSolarGenerator,
    SolarChunkState,
    SolarTraceKernel,
)

OUTPUT = REPO_ROOT / "BENCH_traces.json"

#: Minimum acceptable batch/scalar speedup on chunked generation.
TRACE_TARGET = 5.0

#: Minimum acceptable end-to-end speedup on the streamed sweep.
FLEET_TARGET = 2.0


def _chunks(n_slots: int, chunk_slots: int):
    for start in range(0, n_slots, chunk_slots):
        yield start, min(chunk_slots, n_slots - start)


def measure_generation(batch: int, days: int,
                       chunk_slots: int) -> dict:
    """Scalar cursors vs one batch cursor over the same horizon."""
    system = paper_system_config(days=days)
    n_slots = system.horizon_slots

    def streams():
        return [StreamingPaperTraces(n_slots, seed=seed,
                                     clip_p_grid=system.p_grid)
                for seed in range(batch)]

    t0 = time.perf_counter()
    for stream in streams():
        cursor = stream.open()
        for _, take in _chunks(n_slots, chunk_slots):
            cursor.read(take)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cursor = BatchTraceStream(streams()).open()
    for _, take in _chunks(n_slots, chunk_slots):
        cursor.read(take)
    batch_s = time.perf_counter() - t0

    speedup = scalar_s / batch_s
    slot_rate = batch * n_slots / batch_s
    print(f"  generation B={batch} horizon={n_slots} "
          f"chunk={chunk_slots}: scalar {scalar_s:6.2f}s, batch "
          f"{batch_s:6.2f}s ({speedup:.1f}x, "
          f"{slot_rate / 1e6:.2f}M slot-scenarios/s)")
    return {
        "batch_size": batch,
        "horizon_slots": n_slots,
        "chunk_slots": chunk_slots,
        "scalar_s": round(scalar_s, 3),
        "batch_s": round(batch_s, 3),
        "speedup": round(speedup, 2),
        "batch_slot_scenarios_per_s": round(slot_rate),
        "ok": speedup >= TRACE_TARGET,
    }


def measure_components(batch: int, days: int,
                       chunk_slots: int) -> list[dict]:
    """Per-component scalar-loop vs kernel timings (same draws)."""
    system = paper_system_config(days=days)
    n_slots = system.horizon_slots
    streams = [StreamingPaperTraces(n_slots, seed=seed)
               for seed in range(batch)]
    models = {
        "demand": [s.demand_model for s in streams],
        "solar": [s.solar_model for s in streams],
        "price": [s.price_model for s in streams],
    }
    seeds = [s.seed for s in streams]

    def rngs(name):
        return [RngFactory(seed).stream(name) for seed in seeds]

    rows = []

    def record(name, scalar_fn, batch_fn):
        t0 = time.perf_counter()
        scalar_fn()
        scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        batch_fn()
        batch_s = time.perf_counter() - t0
        rows.append({
            "component": name,
            "scalar_s": round(scalar_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(scalar_s / batch_s, 1),
        })
        print(f"    {name:16s} scalar {scalar_s:7.3f}s  batch "
              f"{batch_s:7.3f}s  ({scalar_s / batch_s:5.1f}x)")

    def scalar_sensitive():
        for model, rng in zip(models["demand"], rngs("dds")):
            generator = GoogleClusterDemandGenerator(model)
            state = DemandChunkState()
            for start, take in _chunks(n_slots, chunk_slots):
                generator.delay_sensitive_stream_chunk(
                    start, take, rng, state)

    def batch_sensitive():
        kernel = DemandTraceKernel(models["demand"])
        generators, level = rngs("dds"), np.zeros(batch)
        for start, take in _chunks(n_slots, chunk_slots):
            _, level = kernel.sensitive_block(start, take, generators,
                                              level)

    record("demand_sensitive", scalar_sensitive, batch_sensitive)

    def scalar_tolerant():
        for model, count_rng, size_rng in zip(
                models["demand"], rngs("cnt"), rngs("sz")):
            generator = GoogleClusterDemandGenerator(model)
            for start, take in _chunks(n_slots, chunk_slots):
                generator.delay_tolerant_stream_chunk(
                    start, take, count_rng, size_rng)

    def batch_tolerant():
        kernel = DemandTraceKernel(models["demand"])
        count_rngs, size_rngs = rngs("cnt"), rngs("sz")
        for start, take in _chunks(n_slots, chunk_slots):
            kernel.tolerant_block(start, take, count_rngs, size_rngs)

    record("demand_tolerant", scalar_tolerant, batch_tolerant)

    def scalar_solar():
        for model, cloud, jitter, noise in zip(
                models["solar"], rngs("cl"), rngs("ji"), rngs("no")):
            generator = MidcLikeSolarGenerator(model)
            state = SolarChunkState()
            for start, take in _chunks(n_slots, chunk_slots):
                generator.generate_chunk(start, take, cloud, jitter,
                                         noise, state)

    def batch_solar():
        kernel = SolarTraceKernel(models["solar"])
        clouds, jitters, noises = rngs("cl"), rngs("ji"), rngs("no")
        state = np.full(batch, -1, dtype=np.int64)
        level = np.zeros(batch)
        for start, take in _chunks(n_slots, chunk_slots):
            _, state, level = kernel.block(start, take, clouds,
                                           jitters, noises, state,
                                           level)

    record("solar", scalar_solar, batch_solar)

    def scalar_prices():
        for model, rt_rng, spike_rng, fwd_rng in zip(
                models["price"], rngs("rt"), rngs("sp"), rngs("fw")):
            generator = NyisoLikePriceGenerator(model)
            state = PriceChunkState()
            for start, take in _chunks(n_slots, chunk_slots):
                generator.real_time_stream_chunk(start, take, rt_rng,
                                                 spike_rng, state)
                generator.forward_curve_chunk(start, take, fwd_rng)

    def batch_prices():
        kernel = PriceTraceKernel(models["price"])
        rt_rngs, spike_rngs, fwd_rngs = rngs("rt"), rngs("sp"), \
            rngs("fw")
        level = np.zeros(batch)
        for start, take in _chunks(n_slots, chunk_slots):
            _, level = kernel.real_time_block(start, take, rt_rngs,
                                              spike_rngs, level)
            kernel.forward_block(start, take, fwd_rngs)

    record("prices", scalar_prices, batch_prices)
    return rows


def measure_end_to_end(n_scenarios: int, batch_size: int,
                       repeats: int = 2) -> dict:
    """The demo streamed sweep, scalar trace path vs kernel path.

    Runs the two paths interleaved, ``repeats`` times each, and scores
    the best wall-clock per path — single-core containers share cores
    with neighbours, and best-of-N is the standard way to read through
    that noise.
    """
    specs = build_demo_fleet("v-sweep", n_scenarios, days=1, t_slots=6,
                             sample_seed=0)
    timings = {"scalar": [], "kernel": []}
    for _ in range(repeats):
        for batch_traces in (False, True):
            runner = FleetRunner(specs, batch_size=batch_size,
                                 batch_traces=batch_traces)
            t0 = time.perf_counter()
            records = runner.run()
            elapsed = time.perf_counter() - t0
            assert len(records) == n_scenarios
            label = "kernel" if batch_traces else "scalar"
            timings[label].append(elapsed)
            print(f"  end-to-end {label:6s} traces: {elapsed:6.2f}s "
                  f"({n_scenarios / elapsed:.0f} scenarios/s)")
    timings = {label: min(times) for label, times in timings.items()}

    # Bit-identity spot check on a subset (the full guarantee is the
    # property suite + equivalence harness; this catches wiring rot).
    subset = specs[:2 * batch_size]
    same = (FleetRunner(subset, batch_size=batch_size).run()
            == FleetRunner(subset, batch_size=batch_size,
                           batch_traces=False).run())

    speedup = timings["scalar"] / timings["kernel"]
    return {
        "n_scenarios": n_scenarios,
        "batch_size": batch_size,
        "repeats_best_of": repeats,
        "scalar_path_s": round(timings["scalar"], 3),
        "kernel_path_s": round(timings["kernel"], 3),
        "scalar_scenarios_per_s": round(
            n_scenarios / timings["scalar"], 1),
        "kernel_scenarios_per_s": round(
            n_scenarios / timings["kernel"], 1),
        "speedup": round(speedup, 2),
        "records_identical": bool(same),
        "ok": speedup >= FLEET_TARGET and bool(same),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes, no JSON output")
    args = parser.parse_args(argv)

    if args.quick:
        generation = measure_generation(batch=16, days=4,
                                        chunk_slots=24)
        components = measure_components(batch=16, days=4,
                                        chunk_slots=24)
        end_to_end = measure_end_to_end(n_scenarios=400, batch_size=64,
                                        repeats=1)
    else:
        generation = measure_generation(batch=64, days=30,
                                        chunk_slots=96)
        components = measure_components(batch=64, days=30,
                                        chunk_slots=96)
        end_to_end = measure_end_to_end(n_scenarios=10_000,
                                        batch_size=64, repeats=3)

    target_met = bool(generation["ok"] and end_to_end["ok"])
    payload = {
        "workload": ("chunked stream-family generation (B scenarios, "
                     "30-day horizon, fleet-sized windows) and the "
                     "10^4-scenario streamed v-sweep demo"),
        "target": (f"batch kernels >= {TRACE_TARGET:.0f}x the scalar "
                   f"cursors on chunked generation (B >= 64); "
                   f">= {FLEET_TARGET:.0f}x end-to-end on the streamed "
                   f"sweep, records identical"),
        "target_met": target_met,
        "trace_generation": generation,
        "components": components,
        "end_to_end": end_to_end,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    if not args.quick:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {OUTPUT} (target met: {target_met})")
    return 0 if target_met else 1


if __name__ == "__main__":
    raise SystemExit(main())
