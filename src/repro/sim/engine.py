"""The discrete-time DPSS simulation engine.

The engine is the physics authority: it owns the UPS battery, the
backlog queue, the grid interconnect and the market ledgers, and it
resolves the supply-demand balance (paper eq. 4) every fine slot:

    s(τ) + bdc(τ) − brc(τ) = dds(τ) + γ(τ)Q(τ) + W(τ)

with service priority *delay-sensitive first*: when supply plus maximal
discharge cannot carry everything, deferrable service is cut before
delay-sensitive demand, and any remaining gap is recorded as unserved
energy (an availability violation — impossible under sane
configurations because demand peaks are clipped at ``Pgrid``).

Controllers only choose ``gbef``, ``grt`` and ``γ``; every quantity is
clamped to its physical range before it touches state, so the engine
never trusts a policy.  Observations are built from the *observed*
traces (possibly noise-injected, Fig. 9) while physics and billing use
the *true* traces.
"""

from __future__ import annotations

import numpy as np

from repro.battery.lifetime import CycleLedger
from repro.battery.model import UpsBattery
from repro.config.system import SystemConfig
from repro.core.interfaces import (
    CoarseObservation,
    Controller,
    FineObservation,
    RealTimeDecision,
    SlotFeedback,
)
from repro.exceptions import (
    ConfigurationError,
    HorizonMismatchError,
    InfeasibleActionError,
)
from repro.grid.interconnect import GridInterconnect
from repro.grid.markets import LongTermMarket, RealTimeMarket
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.traces.base import TraceSet
from repro.workload.queue import BacklogQueue


class Simulator:
    """Drives one controller over one horizon of traces.

    ``grid_capacity`` optionally supplies a per-slot feeder capacity
    (MWh) replacing the static ``Pgrid`` — zero entries model grid
    outages (:mod:`repro.sim.outages`).  Contracted advance energy that
    the feeder cannot deliver is not billed (utilities do not charge
    for energy they failed to deliver).
    """

    def __init__(self, system: SystemConfig, controller: Controller,
                 traces: TraceSet, observed: TraceSet | None = None,
                 grid_capacity=None):
        if traces.n_slots < system.horizon_slots:
            raise HorizonMismatchError(
                f"traces cover {traces.n_slots} slots but the system "
                f"horizon needs {system.horizon_slots}")
        self.system = system
        self.controller = controller
        self.traces = traces
        self.observed = traces if observed is None else observed
        if self.observed.n_slots != traces.n_slots:
            raise HorizonMismatchError(
                f"observed traces cover {self.observed.n_slots} slots, "
                f"true traces {traces.n_slots}")
        if grid_capacity is None:
            self.grid_capacity = None
        else:
            capacity = np.asarray(grid_capacity, dtype=float)
            if capacity.size < system.horizon_slots:
                raise HorizonMismatchError(
                    f"grid capacity covers {capacity.size} slots but "
                    f"the horizon needs {system.horizon_slots}")
            if np.any(capacity < 0):
                raise ConfigurationError("grid capacity must be >= 0")
            self.grid_capacity = capacity

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate the full horizon and return the result bundle."""
        system = self.system
        n_slots = system.horizon_slots
        t_slots = system.fine_slots_per_coarse

        battery = UpsBattery(system)
        backlog = BacklogQueue()
        cycles = CycleLedger(system.battery_op_cost, system.cycle_budget)
        interconnect = GridInterconnect(system.p_grid)
        lt_market = LongTermMarket(system.p_max, t_slots)
        rt_market = RealTimeMarket(system.p_max)
        recorder = Recorder(n_slots)

        true_plt = self.traces.coarse_prices(t_slots)
        obs_plt = self.observed.coarse_prices(t_slots)

        self.controller.begin_horizon(system)

        for slot in range(n_slots):
            coarse = slot // t_slots

            if system.is_coarse_boundary(slot):
                gbef = self._plan(coarse, slot, battery, backlog,
                                  cycles, obs_plt)
                gbef = min(max(0.0, gbef),
                           interconnect.max_block_purchase(t_slots))
                lt_market.purchase_block(gbef, float(true_plt[coarse]))

            if self.grid_capacity is None:
                cap = system.p_grid
            else:
                cap = float(self.grid_capacity[slot])
            rate = min(lt_market.per_fine_slot_energy, cap)
            decision = self._decide(slot, coarse, rate, battery,
                                    backlog, cycles, cap)

            self._step_physics(slot, coarse, rate, decision, battery,
                               backlog, cycles, cap,
                               lt_market, rt_market, recorder,
                               float(true_plt[coarse]))

        return SimulationResult(
            controller_name=self.controller.name,
            system=system,
            series=recorder.as_dict(),
            delay_stats=backlog.stats,
            battery_operations=cycles.operations,
            lt_energy=lt_market.ledger.energy,
            rt_energy=rt_market.ledger.energy,
            meta={"traces": dict(self.traces.meta),
                  "observed": dict(self.observed.meta)},
        )

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def _plan(self, coarse: int, slot: int, battery: UpsBattery,
              backlog: BacklogQueue, cycles: CycleLedger,
              obs_plt) -> float:
        # The paper's planner "observes the demand d(t) and renewable
        # r(t) generated during time slot t" — a coarse slot's worth of
        # data.  Online-legal reading: the per-fine-slot averages of
        # the *previous* coarse window (the boundary slot itself for
        # the very first window, where no history exists yet).
        t_slots = self.system.fine_slots_per_coarse
        window = (slice(slot - t_slots, slot) if slot >= t_slots
                  else slice(slot, slot + 1))
        profile_ds = tuple(float(v) for v in self.observed.demand_ds[window])
        profile_dt = tuple(float(v) for v in self.observed.demand_dt[window])
        profile_r = tuple(float(v) for v in self.observed.renewable[window])
        profile_p = tuple(float(v) for v in self.observed.price_rt[window])
        obs = CoarseObservation(
            coarse_index=coarse,
            fine_slot=slot,
            price_lt=float(obs_plt[coarse]),
            demand_ds=sum(profile_ds) / len(profile_ds),
            demand_dt=sum(profile_dt) / len(profile_dt),
            renewable=sum(profile_r) / len(profile_r),
            battery_level=battery.level,
            backlog=backlog.backlog,
            cycle_budget_left=cycles.remaining,
            profile_demand_ds=profile_ds,
            profile_demand_dt=profile_dt,
            profile_renewable=profile_r,
            profile_price_rt=profile_p,
        )
        return float(self.controller.plan_long_term(obs))

    def _decide(self, slot: int, coarse: int, rate: float,
                battery: UpsBattery, backlog: BacklogQueue,
                cycles: CycleLedger,
                grid_cap: float) -> RealTimeDecision:
        observed_r = float(self.observed.renewable[slot])
        obs = FineObservation(
            fine_slot=slot,
            coarse_index=coarse,
            price_rt=float(self.observed.price_rt[slot]),
            demand_ds=float(self.observed.demand_ds[slot]),
            demand_dt=float(self.observed.demand_dt[slot]),
            renewable=observed_r,
            battery_level=battery.level,
            backlog=backlog.backlog,
            long_term_rate=rate,
            grid_headroom=max(0.0, grid_cap - rate),
            supply_headroom=max(0.0, self.system.s_max - rate
                                - observed_r),
            cycle_budget_left=cycles.remaining,
        )
        return self.controller.real_time(obs)

    def _step_physics(self, slot: int, coarse: int, rate: float,
                      decision: RealTimeDecision, battery: UpsBattery,
                      backlog: BacklogQueue, cycles: CycleLedger,
                      grid_cap: float,
                      lt_market, rt_market, recorder: Recorder,
                      plt_true: float) -> None:
        system = self.system
        dds = float(self.traces.demand_ds[slot])
        ddt = float(self.traces.demand_dt[slot])
        renewable = float(self.traces.renewable[slot])
        prt = float(self.traces.price_rt[slot])

        # Clamp the real-time purchase to the feeder and supply caps.
        if decision.grt < 0:
            raise InfeasibleActionError(
                f"real-time purchase must be >= 0, got {decision.grt}")
        grt = min(decision.grt, max(0.0, grid_cap - rate))
        grt = min(grt, max(0.0, system.s_max - rate - renewable))
        cost_rt = rt_market.purchase(grt, prt)

        # Renewable curtailment if the bus is over the supply cap.
        renewable_used = min(renewable,
                             max(0.0, system.s_max - rate - grt))
        curtailed = renewable - renewable_used
        supply = rate + grt + renewable_used

        # Service resolution: delay-sensitive first.
        had_backlog = backlog.has_backlog
        q_now = backlog.backlog
        sdt_request = min(decision.gamma * q_now, system.s_dt_max)
        battery_allowed = not cycles.exhausted
        charge = discharge = waste = unserved = 0.0
        sdt = sdt_request

        desired = dds + sdt_request
        if supply >= desired - 1e-12:
            surplus = max(0.0, supply - desired)
            if surplus < 1e-12:
                surplus = 0.0  # float residue, not a flow
            if battery_allowed and surplus > 0.0:
                action = battery.charge(surplus)
                charge = action.charge
            waste = surplus - charge
        else:
            need = desired - supply
            discharge_cap = battery.available if battery_allowed else 0.0
            if discharge_cap >= need:
                discharge = need
            else:
                covered = supply + discharge_cap
                discharge = discharge_cap
                if covered >= dds:
                    sdt = covered - dds
                else:
                    sdt = 0.0
                    unserved = dds - covered
            if discharge > 0:
                battery.discharge(discharge)

        cost_battery = cycles.record(charge, discharge)
        served_parcels = backlog.step(sdt, ddt, slot)
        del served_parcels  # delays accumulate inside backlog.stats

        cost_lt = rate * plt_true
        cost_waste = waste * system.waste_penalty
        recorder.record(
            cost_lt=cost_lt,
            cost_rt=cost_rt,
            cost_battery=cost_battery,
            cost_waste=cost_waste,
            cost_total=cost_lt + cost_rt + cost_battery + cost_waste,
            gbef_rate=rate,
            grt=grt,
            renewable_used=renewable_used,
            renewable_curtailed=curtailed,
            served_ds=dds - unserved,
            served_dt=sdt,
            unserved_ds=unserved,
            charge=charge,
            discharge=discharge,
            battery_level=battery.level,
            waste=waste,
            backlog=backlog.backlog,
            gamma=decision.gamma,
        )
        self.controller.end_slot(SlotFeedback(
            fine_slot=slot,
            served_dt=sdt,
            served_ds=dds - unserved,
            unserved_ds=unserved,
            charge=charge,
            discharge=discharge,
            waste=waste,
            battery_level=battery.level,
            backlog=backlog.backlog,
            had_backlog=had_backlog,
        ))


def run_simulation(system: SystemConfig, controller: Controller,
                   traces: TraceSet,
                   observed: TraceSet | None = None,
                   grid_capacity=None) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(system, controller, traces, observed=observed,
                     grid_capacity=grid_capacity).run()
