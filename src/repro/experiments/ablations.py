"""Ablation studies for the design decisions DESIGN.md calls out.

* **Abl-1, objective mode** — the P5 objective exactly as printed in
  the paper versus the first-principles derivation (DESIGN.md §2).
* **Abl-2, cycle budget** — constraint (9)'s ``Nmax`` from
  unconstrained down to one operation per day.
* **Abl-3, battery trade margin** — the break-even wedge
  (``SmartDPSSConfig.battery_price_margin``) from 0 to aggressive.
* **Abl-4, P4 deferrable-arrivals planning** — sizing the advance
  block for expected deferrable arrivals versus leaving deferred load
  to the V-gated real-time stage.
* **Abl-5, extra baselines** — the myopic price-threshold heuristic
  (separating generic price-awareness from the Lyapunov machinery),
  the perfect-forecast T-step lookahead MPC (what the oracle the
  paper's related work assumes is worth), and the paper's own
  per-window P2 offline construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.baselines.lookahead import LookaheadController, PaperP2Offline
from repro.baselines.myopic import MyopicPriceThreshold
from repro.config.control import ObjectiveMode
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.smartdpss import SmartDPSS
from repro.experiments.common import (
    Scenario,
    build_scenario,
    simulate_runs,
)
from repro.rng import DEFAULT_SEED
from repro.sim.batch import RunSpec


@dataclass(frozen=True)
class AblationRow:
    """One ablation setting's outcome."""

    study: str
    label: str
    time_avg_cost: float
    avg_delay_slots: float
    availability: float
    battery_ops: int


@dataclass(frozen=True)
class AblationResult:
    """All ablation rows, grouped by study label."""

    rows: tuple[AblationRow, ...]

    def study(self, name: str) -> list[AblationRow]:
        """Rows of one study, in run order."""
        return [r for r in self.rows if r.study == name]


def _spec(scenario: Scenario, controller, system=None) -> RunSpec:
    return RunSpec(system=system or scenario.system,
                   controller=controller, traces=scenario.traces)


def run_ablations(seed: int = DEFAULT_SEED, days: int = 31,
                  ) -> AblationResult:
    """Run every ablation study on the shared scenario.

    All settings are declared up front and executed as one fleet; the
    batch executor groups the compatible SmartDPSS runs per objective
    mode and drives the heterodox baselines through the scalar
    adapter.
    """
    scenario = build_scenario(seed=seed, days=days)
    labels: list[tuple[str, str]] = []
    specs: list[RunSpec] = []

    def add(study: str, label: str, spec: RunSpec) -> None:
        labels.append((study, label))
        specs.append(spec)

    # Abl-1: objective mode.
    for mode in (ObjectiveMode.DERIVED, ObjectiveMode.PAPER):
        config = paper_controller_config(objective_mode=mode)
        add("objective", mode.value, _spec(scenario, SmartDPSS(config)))

    # Abl-2: cycle budget Nmax.
    for budget in (None, 310, 106, 31):
        system = paper_system_config(days=days, cycle_budget=budget)
        add("cycle_budget",
            "unbounded" if budget is None else str(budget),
            _spec(scenario, SmartDPSS(paper_controller_config()),
                  system=system))

    # Abl-3: battery trade margin.
    for margin in (0.0, 3.0, 10.0):
        config = paper_controller_config().replace(
            battery_price_margin=margin)
        add("battery_margin", f"{margin:g} $/MWh",
            _spec(scenario, SmartDPSS(config)))

    # Abl-4: P4 deferrable-arrivals planning.
    for plan_arrivals in (False, True):
        config = paper_controller_config().replace(
            plan_deferrable_arrivals=plan_arrivals)
        add("p4_arrivals", "plan" if plan_arrivals else "defer",
            _spec(scenario, SmartDPSS(config)))

    # Abl-5: extra baselines — generic price-awareness (myopic) and
    # forecast-oracle MPC variants (what a perfect short-term
    # forecast would buy; paper Section VII's comparison axis).
    add("baseline", "myopic-threshold",
        _spec(scenario, MyopicPriceThreshold()))
    add("baseline", "lookahead-oracle",
        _spec(scenario, LookaheadController(scenario.traces)))
    add("baseline", "paper-P2-offline",
        _spec(scenario, PaperP2Offline(scenario.traces)))

    results = simulate_runs(specs)
    rows = tuple(
        AblationRow(
            study=study, label=label,
            time_avg_cost=result.time_average_cost,
            avg_delay_slots=result.average_delay_slots,
            availability=result.availability,
            battery_ops=result.battery_operations)
        for (study, label), result in zip(labels, results))
    return AblationResult(rows=rows)


def render(result: AblationResult) -> str:
    """Printed form of every ablation study."""
    parts = []
    for study in ("objective", "cycle_budget", "battery_margin",
                  "p4_arrivals", "baseline"):
        study_rows = result.study(study)
        table_rows = [[r.label, r.time_avg_cost, r.avg_delay_slots,
                       r.availability, r.battery_ops]
                      for r in study_rows]
        parts.append(format_table(
            ["setting", "cost/slot", "avg delay", "availability",
             "battery ops"],
            table_rows, title=f"Ablation — {study}"))
    return "\n\n".join(parts)
