"""One-call assembly of the paper's trace bundle.

:func:`make_paper_traces` reproduces the evaluation inputs of Section
VI-A: one month (31 days of one-hour slots) of Google-cluster-like
demand split into delay-sensitive and delay-tolerant components,
MIDC-like solar production, and NYISO-like two-market prices — with
demand peaks clipped at ``Pgrid`` exactly as the paper describes.
Everything is driven by one root seed through independent substreams
(:mod:`repro.rng`), so the bundle is bit-reproducible.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.rng import DEFAULT_SEED, RngFactory
from repro.traces.base import TraceSet
from repro.traces.demand import DemandModel, GoogleClusterDemandGenerator
from repro.traces.prices import NyisoLikePriceGenerator, PriceModel
from repro.traces.scaling import clip_demand_peaks
from repro.traces.solar import MidcLikeSolarGenerator, SolarModel
from repro.traces.wind import WindModel, WindTraceGenerator
from repro.exceptions import ConfigurationError


def make_paper_traces(system: SystemConfig | None = None,
                      seed: int = DEFAULT_SEED,
                      n_slots: int | None = None,
                      solar_model: SolarModel | None = None,
                      price_model: PriceModel | None = None,
                      demand_model: DemandModel | None = None,
                      wind_model: WindModel | None = None,
                      clip_peaks: bool = True) -> TraceSet:
    """Build the full input bundle for one simulation horizon.

    Parameters
    ----------
    system:
        Determines the horizon length, the price cap fed to the price
        model, the grid cap used for peak clipping and the
        delay-tolerant arrival cap.  Defaults to the paper system.
    seed:
        Root seed; substreams named ``solar`` / ``prices`` / ``demand``
        / ``wind`` derive from it.
    n_slots:
        Override the horizon (defaults to the system's).
    solar_model / price_model / demand_model:
        Component model overrides for custom scenarios.
    wind_model:
        When given, wind production is *added* to solar in the
        aggregate renewable series (the paper's system model carries a
        single ``r(τ)``).
    clip_peaks:
        Apply the paper's ``Pgrid`` peak clipping (Section VI-A).
    """
    if system is None:
        from repro.config.presets import paper_system_config
        system = paper_system_config()
    slots = system.horizon_slots if n_slots is None else int(n_slots)
    if slots < 1:
        raise ConfigurationError(f"horizon must have >= 1 slot, got {slots}")

    factory = RngFactory(seed)

    if price_model is None:
        price_model = PriceModel(price_cap=system.p_max,
                                 slot_hours=system.slot_hours)
    if demand_model is None:
        demand_model = DemandModel(d_dt_max=system.d_dt_max,
                                   slot_hours=system.slot_hours)
    if solar_model is None:
        solar_model = SolarModel(slot_hours=system.slot_hours)

    demand_ds, demand_dt = GoogleClusterDemandGenerator(demand_model).generate(
        slots, factory.stream("demand"))
    renewable = MidcLikeSolarGenerator(solar_model).generate(
        slots, factory.stream("solar"))
    if wind_model is not None:
        renewable = renewable + WindTraceGenerator(wind_model).generate(
            slots, factory.stream("wind"))
    price_rt, price_lt = NyisoLikePriceGenerator(price_model).generate(
        slots, factory.stream("prices"))

    traces = TraceSet(
        demand_ds=demand_ds,
        demand_dt=demand_dt,
        renewable=renewable,
        price_rt=price_rt,
        price_lt_hourly=price_lt,
        meta={"seed": seed, "source": "make_paper_traces"},
    )
    if clip_peaks and system.p_grid > 0:
        traces = clip_demand_peaks(traces, system.p_grid)
    return traces
