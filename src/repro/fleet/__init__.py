"""Fleet subsystem: streamed scenario pipelines at sweep scale.

Everything the in-memory engines assume fits in RAM — full trace
horizons, per-slot series, one process — stops holding at 10⁴+-scenario
sweeps.  This package supplies the missing layers:

* :mod:`repro.fleet.stream` — chunked, seed-deterministic trace
  sources (``O(B · chunk)`` trace memory, bit-identical to full
  materialization for every chunk size);
* :mod:`repro.fleet.spec` — declarative, serializable
  :class:`ScenarioSpec` plus grid / product / random-sampling fleet
  generators;
* :mod:`repro.fleet.engine` — the chunk-at-a-time
  :class:`StreamingBatchSimulator` with O(B) result aggregation;
* :mod:`repro.fleet.runner` — :class:`FleetRunner` sharding whole
  vectorized batches across worker processes (also the engine behind
  ``simulate_many(..., executor="process")``);
* :mod:`repro.fleet.store` — append-only :class:`ResultStore` with
  seed-replicated aggregation back into
  :class:`~repro.sim.sweep.SweepTable`;
* :mod:`repro.fleet.observe` — streamed observation models (sensor
  noise and faults) derived per chunk on top of the true traces.

Command line::

    python -m repro.fleet run --demo v-sweep --scenarios 10000 --out out/
    python -m repro.fleet report --out out/

Telemetry quickstart — answer "where did the time go" for any run::

    runner = FleetRunner(specs, store=store, telemetry=True)
    runner.run()
    print(runner.last_manifest.render())   # per-stage breakdown

    # or from the shell (the manifest persists next to the results):
    #   python -m repro.fleet run --demo v-sweep --out out/ --telemetry
    #   python -m repro.fleet stats out/

Instrumentation (:mod:`repro.telemetry`) is explicitly passed down
the pipeline — runner → engine → controller → solvers — and records
are bit-identical with telemetry on or off: span timers only read the
monotonic clock, never numeric state.  Disabled (the default), every
instrumented site costs one attribute check.

Failure semantics
-----------------
One poisoned scenario or one dead worker must not kill a 10⁴-scenario
sweep.  Unless ``FleetRunner(fail_fast=True)``:

* A shard exception, a worker crash (``BrokenProcessPool`` — the pool
  is respawned) or an expired ``shard_timeout`` sends the shard
  through **retry → bisect → quarantine**: up to ``max_retries``
  as-is re-runs with bounded exponential backoff, then repeated
  halving until the failure is pinned to one scenario, which is
  recorded in the store's ``errors.jsonl`` sidecar as a typed record
  (``{"spec", "spec_hash", "quarantined": true, "error": {"type",
  "message", "site", "attempts"}}`` — same torn-write-tolerant append
  discipline as results).  Every healthy scenario completes
  bit-identical to a fault-free run.
* Offline-gap LP failures degrade per scenario: the record simply
  omits its ``offline_cost``/``offline_gap`` columns instead of
  failing the shard.
* NaN/Inf trace values are caught at chunk boundaries with a typed
  :class:`~repro.exceptions.TraceCorruptionError` naming scenario and
  slot, which quarantines directly — no bisection needed.
* On resume, a quarantined hash counts as done (re-running would
  re-fail) until ``retry_quarantined=True`` (CLI
  ``--retry-quarantined``) re-offers it; a successful retry's result
  record then supersedes the quarantine record.

Counters (``retries`` / ``bisections`` / ``quarantined`` /
``pool_respawns``) land in :attr:`FleetRunner.last_run_stats` and, on
instrumented runs, in the run manifest.  Every recovery path is
exercised deterministically by the chaos suite
(``tests/test_fleet_faults.py``) through the seedable
:class:`~repro.fleet.faults.FaultPlan` harness — injectable via
``FleetRunner(fault_plan=...)`` or the ``REPRO_FAULT_PLAN``
environment variable, and *disarmed entirely* in production runs.

Observation models
------------------
Controllers at fleet scale see *observed* traces — the true series
passed through a declarative observation model — while physics and
billing always run on the truth.  The models (registered in
:data:`~repro.fleet.observe.OBSERVATION_KINDS`):

* ``uniform`` — multiplicative uniform relative error
  (``rel_error``), the paper's Fig. 9 noise;
* ``dropout`` — each slot lost independently (``rate``); the sensor
  holds its last good sample, so controllers degrade gracefully
  instead of seeing gaps;
* ``stuck`` — the sensor latches its previous reading for
  ``duration`` slots with probability ``rate`` per slot;
* ``bias_drift`` — a Gaussian random-walk multiplicative bias
  (``sigma`` per slot);
* ``delay`` — readings arrive ``slots`` slots late (the horizon's
  first value back-fills the initial gap).

Arm them per scenario via the serializable ``ScenarioSpec.observation``
axis (hashed into ``spec_hash``), or fleet-wide as a paired
clean-vs-noisy sweep via ``FleetRunner(robustness=...)`` (CLI
``--robustness REL``), which adds ``noisy_cost``/``robustness_gap``
columns to every record.  Noise draws come from dedicated
``observe:<series>`` substreams of the observation seed with explicit
per-chunk carry state, so streamed observations are bit-identical to
the in-memory :class:`~repro.traces.noise.NoisyTraceView` reference
for every chunk size — and with no observation model armed, records
are bit-identical to a build without this layer.  Non-finite observed
values raise a typed
:class:`~repro.exceptions.ObservationCorruptionError` (naming the
series and the ``observed`` view) that quarantines like any trace
corruption.

The streamed path is gated by ``tests/equivalence/``: for identical
specs it is bit-identical to the in-memory batch engine (which is
itself bit-identical to the scalar reference engine).
"""

from repro.fleet.engine import (
    ScenarioMetrics,
    StreamingBatchSimulator,
    StreamRunSpec,
    simulate_stream,
)
from repro.fleet.faults import Fault, FaultPlan
from repro.fleet.observe import (
    OBSERVATION_KINDS,
    BatchObserver,
    BiasDrift,
    DelayedReport,
    ObservationModel,
    ObservationSpec,
    ScenarioObserver,
    SensorDropout,
    StuckSensor,
    UniformNoise,
    observation_from_mapping,
)
from repro.fleet.runner import (
    FleetRunner,
    ShardOutcome,
    simulate_many_process,
)
from repro.fleet.spec import (
    ScenarioSpec,
    grid_specs,
    product_specs,
    sample_specs,
)
from repro.fleet.store import ResultStore
from repro.fleet.stream import (
    ArrayTraceStream,
    BatchTraceStream,
    StreamingPaperTraces,
    TraceStream,
)

__all__ = [
    "ArrayTraceStream",
    "BatchObserver",
    "BatchTraceStream",
    "BiasDrift",
    "DelayedReport",
    "Fault",
    "FaultPlan",
    "FleetRunner",
    "OBSERVATION_KINDS",
    "ObservationModel",
    "ObservationSpec",
    "ResultStore",
    "ScenarioMetrics",
    "ScenarioObserver",
    "ScenarioSpec",
    "SensorDropout",
    "ShardOutcome",
    "StreamRunSpec",
    "StreamingBatchSimulator",
    "StreamingPaperTraces",
    "StuckSensor",
    "TraceStream",
    "UniformNoise",
    "grid_specs",
    "observation_from_mapping",
    "product_specs",
    "sample_specs",
    "simulate_many_process",
    "simulate_stream",
]
