"""Shared plumbing for the per-figure experiment modules.

Centralizes scenario construction (system + traces + controllers) so
every figure runs on the identical setup the paper fixes in Section
VI-A, and exposes small run helpers returning
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.baselines import ImpatientController, OfflineOptimal
from repro.config.control import SmartDPSSConfig
from repro.config.presets import paper_controller_config, paper_system_config
from repro.config.system import SystemConfig
from repro.core.smartdpss import SmartDPSS
from repro.rng import DEFAULT_SEED
from repro.sim.batch import RunSpec, simulate_many
from repro.sim.results import SimulationResult
from repro.traces.base import TraceSet
from repro.traces.library import make_paper_traces

#: Environment variable overriding the experiments' executor choice
#: (``serial`` | ``batch`` | ``process``).  Experiments default to the
#: vectorized batch engine; ``process`` additionally shards whole
#: vectorized batch groups across worker processes (the fleet
#: subsystem's :func:`~repro.fleet.runner.simulate_many_process`).
#: All three produce bit-identical results (enforced by
#: tests/equivalence/).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment variable capping the ``process`` executor's pool size
#: (defaults to the visible CPU count).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_executor() -> str:
    """Executor the experiment modules use (env-overridable)."""
    return os.environ.get(EXECUTOR_ENV, "batch")


def default_max_workers() -> int | None:
    """Process-pool cap for the experiments (env-overridable)."""
    value = os.environ.get(MAX_WORKERS_ENV)
    return int(value) if value else None


def simulate_runs(runs: Sequence[RunSpec],
                  executor: str | None = None,
                  max_workers: int | None = None
                  ) -> list[SimulationResult]:
    """Run a figure's whole fleet of simulations, in input order.

    The single seam every ``fig*`` module funnels its runs through:
    one call hands the complete (value × seed) fleet to
    :func:`repro.sim.batch.simulate_many`, which advances compatible
    runs in vectorized lockstep (serially, or sharded across a
    process pool, per ``executor``).
    """
    return simulate_many(runs, executor=executor or default_executor(),
                         max_workers=max_workers
                         or default_max_workers())

#: V values of the paper's Fig. 6(a,b) sweep.
PAPER_V_SWEEP = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: T values (hours) of the paper's Fig. 6(c,d) sweep.  A 30-day horizon
#: divides evenly by every value (744 h does not divide by 48).
PAPER_T_SWEEP = (3, 6, 12, 24, 48, 72, 144)
PAPER_T_SWEEP_DAYS = 30

#: ε values of Fig. 7.
PAPER_EPSILON_SWEEP = (0.25, 0.5, 1.0, 2.0)

#: Battery sizes (minutes of peak demand) of Fig. 7.
PAPER_BATTERY_SWEEP = (0.0, 15.0, 30.0)

#: Renewable penetration levels of Fig. 8.
PAPER_PENETRATION_SWEEP = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Demand-variation scales of Fig. 8 (1.0 = the raw trace).
PAPER_VARIATION_SWEEP = (0.0, 0.5, 1.0, 1.5, 2.0)

#: Expansion factors of Fig. 10.
PAPER_BETA_SWEEP = (1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class Scenario:
    """A fully built experimental setting."""

    system: SystemConfig
    traces: TraceSet
    seed: int


def build_scenario(seed: int = DEFAULT_SEED,
                   days: int = 31,
                   fine_slots_per_coarse: int = 24,
                   battery_minutes: float = 15.0) -> Scenario:
    """Construct the paper's evaluation setting (Section VI-A)."""
    system = paper_system_config(
        battery_minutes=battery_minutes, days=days,
        fine_slots_per_coarse=fine_slots_per_coarse)
    traces = make_paper_traces(system, seed=seed)
    return Scenario(system=system, traces=traces, seed=seed)


def spec_smartdpss(scenario: Scenario,
                   config: SmartDPSSConfig | None = None,
                   observed: TraceSet | None = None,
                   system: SystemConfig | None = None) -> RunSpec:
    """A SmartDPSS run spec (optionally with noisy observations)."""
    return RunSpec(system=system or scenario.system,
                   controller=SmartDPSS(config or paper_controller_config()),
                   traces=scenario.traces, observed=observed)


def spec_impatient(scenario: Scenario,
                   system: SystemConfig | None = None) -> RunSpec:
    """An Impatient-baseline run spec."""
    return RunSpec(system=system or scenario.system,
                   controller=ImpatientController(),
                   traces=scenario.traces)


def spec_offline(scenario: Scenario,
                 system: SystemConfig | None = None) -> RunSpec:
    """A clairvoyant offline-benchmark run spec."""
    return RunSpec(system=system or scenario.system,
                   controller=OfflineOptimal(scenario.traces),
                   traces=scenario.traces)


def run_smartdpss(scenario: Scenario,
                  config: SmartDPSSConfig | None = None,
                  observed: TraceSet | None = None,
                  system: SystemConfig | None = None,
                  ) -> SimulationResult:
    """Run SmartDPSS on a scenario (optionally with noisy observations)."""
    return simulate_runs([spec_smartdpss(scenario, config,
                                         observed, system)])[0]


def run_impatient(scenario: Scenario,
                  system: SystemConfig | None = None) -> SimulationResult:
    """Run the Impatient baseline on a scenario."""
    return simulate_runs([spec_impatient(scenario, system)])[0]


def run_offline(scenario: Scenario,
                system: SystemConfig | None = None) -> SimulationResult:
    """Run the clairvoyant offline benchmark on a scenario."""
    return simulate_runs([spec_offline(scenario, system)])[0]
