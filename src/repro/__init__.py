"""SmartDPSS reproduction — cost-minimizing multi-source datacenter power.

A full reimplementation of *"SmartDPSS: Cost-Minimizing Multi-source
Power Supply for Datacenters with Arbitrary Demand"* (Deng, Liu, Jin,
Wu — ICDCS 2013): the two-timescale Lyapunov online controller, every
substrate it runs on (synthetic trace generators, UPS battery, grid
markets, backlog queue, LP solvers, simulation engine), the paper's
baselines, and a benchmark harness regenerating every evaluation
figure.

Quickstart::

    from repro import (SmartDPSS, Simulator, make_paper_traces,
                       paper_controller_config, paper_system_config)

    system = paper_system_config()
    traces = make_paper_traces(system, seed=7)
    controller = SmartDPSS(paper_controller_config(v=1.0))
    result = Simulator(system, controller, traces).run()
    print(result.time_average_cost, result.average_delay_hours())
"""

import logging as _logging

# Library hygiene: repro.* modules log under this hierarchy but never
# configure handlers — silence "No handlers could be found" for
# embedders; the CLIs install their own stderr handler per invocation.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.caches import clear_caches
from repro.baselines import (
    ImpatientController,
    MyopicPriceThreshold,
    OfflineOptimal,
    solve_offline_plan,
)
from repro.config import (
    ObjectiveMode,
    SmartDPSSConfig,
    SystemConfig,
    paper_controller_config,
    paper_system_config,
)
from repro.core import (
    BoundVariant,
    Controller,
    SmartDPSS,
    TheoreticalBounds,
)
from repro.core.bounds import compute_bounds
from repro.sim import SimulationResult, Simulator, run_simulation
from repro.traces import (
    TraceSet,
    expand_system,
    make_paper_traces,
    rescale_renewable_penetration,
    reshape_demand_variation,
    uniform_observation_noise,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Process hygiene
    "clear_caches",
    # Configuration
    "SystemConfig",
    "SmartDPSSConfig",
    "ObjectiveMode",
    "paper_system_config",
    "paper_controller_config",
    # Controllers
    "Controller",
    "SmartDPSS",
    "ImpatientController",
    "OfflineOptimal",
    "MyopicPriceThreshold",
    "solve_offline_plan",
    # Theory
    "TheoreticalBounds",
    "BoundVariant",
    "compute_bounds",
    # Simulation
    "Simulator",
    "run_simulation",
    "SimulationResult",
    # Traces
    "TraceSet",
    "make_paper_traces",
    "rescale_renewable_penetration",
    "reshape_demand_variation",
    "expand_system",
    "uniform_observation_noise",
]
