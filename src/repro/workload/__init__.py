"""Demand-side substrate: the delay-tolerant backlog queue.

The paper queues delay-tolerant energy demand in ``Q(τ)`` (eq. 2) and
guarantees each unit is served within ``λmax``.  Reporting *actual*
service delays (Figs. 6b, 6d) needs more state than the scalar ``Q``:
:class:`~repro.workload.queue.BacklogQueue` keeps a FIFO ledger of
arrival parcels so every served MWh knows how long it waited.
"""

from repro.workload.cooling import CoolingModel, apply_cooling_overhead
from repro.workload.queue import BacklogQueue, DelayStats, ServedParcel

__all__ = ["BacklogQueue", "DelayStats", "ServedParcel",
           "CoolingModel", "apply_cooling_overhead"]
