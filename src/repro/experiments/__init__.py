"""Experiment harness: one module per paper figure, plus ablations.

Every module exposes a ``run_*`` function returning a plain result
object and a ``render(result) -> str`` producing the printed series the
benchmark harness emits (this repo's stand-in for the paper's plots).
The :mod:`repro.experiments.registry` maps experiment ids
(``fig5`` ... ``fig10``, ``ablations``) to their runners.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
