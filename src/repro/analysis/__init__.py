"""Analysis utilities: bound verification, comparisons, reporting.

* :mod:`repro.analysis.theory` — checks Theorem 2's guarantees against
  a finished simulation (battery range, queue bounds, worst-case delay,
  cost gap);
* :mod:`repro.analysis.comparison` — cost-reduction and gap metrics
  between policies;
* :mod:`repro.analysis.tables` — plain-text table/series rendering used
  by the benchmark harness (the repo's stand-in for the paper's
  figures).
"""

from repro.analysis.comparison import cost_reduction, optimality_gap
from repro.analysis.decomposition import (
    SavingsDecomposition,
    decompose_savings,
)
from repro.analysis.drift import DriftRecorder, verify_drift_inequality
from repro.analysis.peaks import demand_charge, peak_report
from repro.analysis.tables import format_series, format_table
from repro.analysis.theory import BoundCheck, verify_theorem2
from repro.analysis.timeseries import (
    battery_cycle_profile,
    by_day,
    by_hour,
    purchase_profile,
)

__all__ = [
    "verify_theorem2",
    "BoundCheck",
    "verify_drift_inequality",
    "DriftRecorder",
    "cost_reduction",
    "optimality_gap",
    "decompose_savings",
    "SavingsDecomposition",
    "peak_report",
    "demand_charge",
    "format_table",
    "format_series",
    "by_hour",
    "by_day",
    "purchase_profile",
    "battery_cycle_profile",
]
