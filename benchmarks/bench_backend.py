"""Array-backend benchmark: allocation-style engine vs slot workspaces.

Measures the PR-5 fast path — the pluggable array-backend layer with
preallocated per-shard slot workspaces and batched substream seeding —
against the pre-workspace engine configuration (the seed engine:
allocation-style kernels, per-generator seeding, 64-scenario shards).
Writes ``BENCH_backend.json`` at the repo root (see
benchmarks/README.md for how to read it):

1. **Per-stage, NumPy** —
   * *traces*: one full-horizon ``BatchTraceStream`` read at ``B=64``
     (cursor construction + kernel passes), per-generator vs batched
     seeding;
   * *slot loop*: ``_advance_slot`` over pure fine slots at
     ``B ∈ {64, 256}``, allocation path vs workspace path;
   * *planning*: one coarse-boundary ``plan_long_term`` (unchanged by
     this PR; recorded for the stage breakdown).
2. **End-to-end** — the 10⁴-scenario streamed demo sweep
   (``python -m repro.fleet run --demo v-sweep``) in the seed
   configuration versus the new defaults.  Acceptance: **≥ 1.5×**
   with **all records bit-identical**.
3. **Other backends** — CuPy/JAX rows run the stateless P5 kernel when
   the library is importable and otherwise record the skip reason;
   the default install stays NumPy-only by policy.

Run::

    PYTHONPATH=src python benchmarks/bench_backend.py            # full
    PYTHONPATH=src python benchmarks/bench_backend.py --quick    # small
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import rng as rng_mod  # noqa: E402
from repro.backend import available_backends, use_backend  # noqa: E402
from repro.backend import workspace as workspace_mod  # noqa: E402
from repro.config.presets import (  # noqa: E402
    paper_controller_config,
    paper_system_config,
)
from repro.core.smartdpss import SmartDPSS  # noqa: E402
from repro.core.smartdpss_vec import VecSmartDPSS  # noqa: E402
from repro.fleet.__main__ import build_demo_fleet  # noqa: E402
from repro.fleet.runner import (  # noqa: E402
    DEFAULT_BATCH_SIZE,
    FleetRunner,
)
from repro.fleet.stream import (  # noqa: E402
    BatchTraceStream,
    StreamingPaperTraces,
)
from repro.sim.batch import BatchSimulator, RunSpec  # noqa: E402
from repro.traces.library import make_paper_traces  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_backend.json"

#: Minimum acceptable end-to-end speedup of the workspace fast path.
END_TO_END_TARGET = 1.5

#: The seed engine's shard size (pre-PR default), used as the baseline.
BASELINE_BATCH_SIZE = 64


def _fast_path(enabled: bool) -> None:
    """Flip every fast-path default introduced by this PR."""
    workspace_mod.WORKSPACE_DEFAULT = enabled
    rng_mod.BATCHED_SEEDING = enabled


def measure_traces(batch: int, horizon: int, repeats: int) -> dict:
    """Full-horizon batched trace generation, per seeding mode."""
    streams = [StreamingPaperTraces(n_slots=horizon, seed=seed)
               for seed in range(batch)]
    source = BatchTraceStream(streams)
    timings = {}
    blocks = {}
    for label, flag in (("reference", False), ("fast", True)):
        rng_mod.BATCHED_SEEDING = flag
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            blocks[label] = source.open().read(horizon)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        timings[label] = best
    rng_mod.BATCHED_SEEDING = True
    identical = all(
        np.array_equal(getattr(blocks["reference"], name),
                       getattr(blocks["fast"], name))
        for name in ("demand_ds", "demand_dt", "renewable",
                     "price_rt", "price_lt_hourly"))
    speedup = timings["reference"] / timings["fast"]
    print(f"  traces B={batch} x{horizon} slots: "
          f"{timings['reference'] * 1e3:7.2f}ms -> "
          f"{timings['fast'] * 1e3:7.2f}ms ({speedup:.2f}x), "
          f"identical={identical}")
    return {
        "batch_size": batch,
        "horizon_slots": horizon,
        "reference_s": round(timings["reference"], 5),
        "fast_s": round(timings["fast"], 5),
        "speedup": round(speedup, 2),
        "blocks_identical": identical,
        "ok": identical,
    }


def _slot_simulator(batch: int, workspace: bool) -> tuple:
    system = paper_system_config(days=10)
    configs = [paper_controller_config(v=float(v))
               for v in np.geomspace(0.05, 5.0, batch)]
    runs = [RunSpec(system=system, controller=SmartDPSS(config),
                    traces=make_paper_traces(system, seed=seed))
            for seed, config in enumerate(configs)]
    simulator = BatchSimulator(
        runs,
        controller=VecSmartDPSS([run.controller for run in runs],
                                workspace=workspace),
        workspace=workspace)
    state = simulator._begin_run()
    for slot in range(simulator._t_slots + 1):
        simulator._advance_slot(slot, state)
    return simulator, state


def measure_slot_loop(batch: int, slots: int) -> dict:
    """Pure fine-slot advancement, allocation path vs workspace path."""
    timings = {}
    for label, flag in (("reference", False), ("fast", True)):
        simulator, state = _slot_simulator(batch, workspace=flag)
        start = simulator._t_slots + 1
        horizon = simulator._n_slots
        t0 = time.perf_counter()
        for index in range(slots):
            slot = start + index % (horizon - start)
            if slot % simulator._t_slots == 0:
                slot += 1  # keep the measured window boundary-free
            simulator._advance_slot(slot, state)
        timings[label] = time.perf_counter() - t0
    speedup = timings["reference"] / timings["fast"]
    per_slot = timings["fast"] / slots * 1e6
    print(f"  slot loop B={batch:4d} x{slots} slots: "
          f"{timings['reference']:6.3f}s -> {timings['fast']:6.3f}s "
          f"({speedup:.2f}x, {per_slot:.0f} us/slot)")
    return {
        "batch_size": batch,
        "slots": slots,
        "reference_s": round(timings["reference"], 4),
        "fast_s": round(timings["fast"], 4),
        "speedup": round(speedup, 2),
        "fast_us_per_slot": round(per_slot, 1),
    }


def measure_planning(batch: int, boundaries: int) -> dict:
    """One coarse-boundary plan (stage unchanged by this PR)."""
    simulator, state = _slot_simulator(batch, workspace=True)
    obs = simulator._coarse_observations(
        1, simulator._t_slots, state.battery, state.backlog,
        state.cycles)
    controller = simulator.controller
    controller.plan_long_term(obs)  # warm-up
    t0 = time.perf_counter()
    for _ in range(boundaries):
        controller.plan_long_term(obs)
    elapsed = time.perf_counter() - t0
    per_boundary = elapsed / boundaries * 1e3
    print(f"  planning B={batch} x{boundaries} boundaries: "
          f"{per_boundary:.2f} ms/boundary")
    return {
        "batch_size": batch,
        "boundaries": boundaries,
        "total_s": round(elapsed, 4),
        "ms_per_boundary": round(per_boundary, 3),
    }


def measure_end_to_end(n_scenarios: int, repeats: int) -> dict:
    """The demo streamed sweep: seed configuration vs new defaults.

    Both paths run interleaved ``repeats`` times (best-of to read
    through single-core container noise); *all* records must compare
    equal — they carry every metric float, so equality is the
    bit-identity gate.
    """
    specs = build_demo_fleet("v-sweep", n_scenarios, days=1, t_slots=6,
                             sample_seed=0)
    timings = {"reference": [], "fast": []}
    records = {}
    try:
        for _ in range(repeats):
            for label, flag, batch_size in (
                    ("reference", False, BASELINE_BATCH_SIZE),
                    ("fast", True, DEFAULT_BATCH_SIZE)):
                _fast_path(flag)
                runner = FleetRunner(specs, batch_size=batch_size)
                t0 = time.perf_counter()
                records[label] = runner.run()
                elapsed = time.perf_counter() - t0
                timings[label].append(elapsed)
                print(f"  end-to-end {label:9s}: {elapsed:6.2f}s "
                      f"({n_scenarios / elapsed:.0f} scenarios/s)")
    finally:
        _fast_path(True)
    identical = records["reference"] == records["fast"]
    best = {label: min(times) for label, times in timings.items()}
    speedup = best["reference"] / best["fast"]
    # The timing gate only means something at acceptance scale with
    # best-of-N; tiny --quick runs gate on bit-identity alone so a
    # noisy neighbour cannot fail a smoke invocation.
    gate_timing = n_scenarios >= 5000 and repeats >= 2
    return {
        "n_scenarios": n_scenarios,
        "repeats_best_of": repeats,
        "reference_batch_size": BASELINE_BATCH_SIZE,
        "fast_batch_size": DEFAULT_BATCH_SIZE,
        "reference_s": round(best["reference"], 3),
        "fast_s": round(best["fast"], 3),
        "reference_scenarios_per_s": round(
            n_scenarios / best["reference"], 1),
        "fast_scenarios_per_s": round(n_scenarios / best["fast"], 1),
        "speedup": round(speedup, 2),
        "speedup_gated": gate_timing,
        "records_identical": bool(identical),
        "ok": bool(identical and (not gate_timing
                                  or speedup >= END_TO_END_TARGET)),
    }


def measure_optional_backends(batch: int, rounds: int) -> dict:
    """P5 kernel timing per optional backend; recorded skips otherwise."""
    from repro.config.control import ObjectiveMode
    from repro.core.p5_vec import BatchSlotState, solve_p5_batch

    rng = np.random.default_rng(0)
    host_fields = {name: rng.uniform(0.1, 2.0, batch) for name in (
        "q_hat", "y_hat", "x_hat", "v", "price_rt", "battery_op_cost",
        "waste_penalty", "backlog", "gbef_rate", "renewable",
        "demand_ds", "charge_cap", "discharge_cap", "eta_c", "eta_d",
        "s_dt_max", "grt_cap", "battery_margin")}
    availability = available_backends()
    report = {}
    for name in ("numpy", "cupy", "jax"):
        reason = availability[name]
        if reason is not None:
            report[name] = {"skipped": True, "reason": reason}
            print(f"  backend {name}: skipped ({reason.splitlines()[0]})")
            continue
        try:
            with use_backend(name) as backend:
                fields = {key: backend.asarray(value)
                          for key, value in host_fields.items()}
                state = BatchSlotState(**fields)
                solve_p5_batch(state, ObjectiveMode.DERIVED)  # warm-up
                backend.synchronize()
                t0 = time.perf_counter()
                for _ in range(rounds):
                    solve_p5_batch(state, ObjectiveMode.DERIVED)
                backend.synchronize()
                elapsed = time.perf_counter() - t0
            report[name] = {
                "skipped": False,
                "p5_kernel_us": round(elapsed / rounds * 1e6, 1),
                "mutable": backend.mutable,
            }
            print(f"  backend {name}: P5 kernel "
                  f"{elapsed / rounds * 1e6:.0f} us at B={batch}")
        except Exception as error:  # pragma: no cover - device-specific
            report[name] = {"skipped": True,
                            "reason": f"{type(error).__name__}: {error}"}
            print(f"  backend {name}: failed ({error})")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes, no JSON output")
    args = parser.parse_args(argv)

    if args.quick:
        traces = measure_traces(batch=16, horizon=168, repeats=2)
        slot_loop = [measure_slot_loop(batch, slots=60)
                     for batch in (64,)]
        planning = measure_planning(batch=64, boundaries=30)
        end_to_end = measure_end_to_end(n_scenarios=400, repeats=1)
        backends = measure_optional_backends(batch=64, rounds=50)
    else:
        traces = measure_traces(batch=64, horizon=744, repeats=3)
        slot_loop = [measure_slot_loop(batch, slots=200)
                     for batch in (64, 256)]
        planning = measure_planning(batch=64, boundaries=100)
        end_to_end = measure_end_to_end(n_scenarios=10_000, repeats=3)
        backends = measure_optional_backends(batch=64, rounds=200)

    target_met = bool(traces["ok"] and end_to_end["ok"])
    payload = {
        "workload": ("batched trace generation, the boundary-free slot "
                     "loop, coarse-boundary planning, and the "
                     "10^4-scenario streamed v-sweep demo; optional "
                     "backends run the stateless P5 kernel"),
        "target": (f"end-to-end >= {END_TO_END_TARGET}x the seed engine "
                   f"configuration on the NumPy workspace backend, all "
                   f"records bit-identical; importing repro never "
                   f"requires CuPy/JAX"),
        "target_met": target_met,
        "stages": {
            "traces": traces,
            "slot_loop": slot_loop,
            "planning": planning,
        },
        "end_to_end": end_to_end,
        "backends": backends,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    if not args.quick:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        print(f"\nwrote {OUTPUT} (target met: {target_met})")
    return 0 if target_met else 1


if __name__ == "__main__":
    raise SystemExit(main())
