"""SystemConfig validation and derived quantities."""

import pytest

from repro.config.system import SystemConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        SystemConfig()

    @pytest.mark.parametrize("field,value", [
        ("fine_slots_per_coarse", 0),
        ("num_coarse_slots", 0),
        ("slot_hours", 0.0),
        ("p_max", 0.0),
        ("p_grid", -1.0),
        ("s_max", -0.1),
        ("b_max", -1.0),
        ("b_charge_max", -0.5),
        ("b_discharge_max", -0.5),
        ("eta_c", 0.0),
        ("eta_c", 1.5),
        ("eta_d", 0.9),
        ("battery_op_cost", -0.1),
        ("cycle_budget", -1),
        ("d_dt_max", -1.0),
        ("s_dt_max", -1.0),
        ("waste_penalty", -1.0),
    ])
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SystemConfig(**{field: value})

    def test_bmin_above_bmax_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(b_max=0.5, b_min=0.6)

    def test_binit_outside_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(b_max=0.5, b_min=0.1, b_init=0.05)

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(p_max=float("inf"))


class TestDerived:
    def test_horizon_slots(self):
        config = SystemConfig(fine_slots_per_coarse=24,
                              num_coarse_slots=31)
        assert config.horizon_slots == 744

    def test_horizon_hours_respects_slot_length(self):
        config = SystemConfig(fine_slots_per_coarse=4,
                              num_coarse_slots=2, slot_hours=0.25)
        assert config.horizon_hours == pytest.approx(2.0)

    def test_initial_battery_defaults_full(self):
        config = SystemConfig(b_max=0.5, b_min=0.1)
        assert config.initial_battery == 0.5

    def test_initial_battery_override(self):
        config = SystemConfig(b_max=0.5, b_min=0.1, b_init=0.3)
        assert config.initial_battery == 0.3

    def test_capacity_span(self):
        config = SystemConfig(b_max=0.5, b_min=0.1)
        assert config.battery_capacity_span == pytest.approx(0.4)

    def test_has_battery_true(self):
        assert SystemConfig(b_max=0.5, b_min=0.0).has_battery

    def test_has_battery_false_when_zero_span(self):
        config = SystemConfig(b_max=0.0, b_min=0.0)
        assert not config.has_battery


class TestBatteryEnergyCaps:
    def test_discharge_respects_rate_cap(self):
        config = SystemConfig(b_max=10.0, b_min=0.0,
                              b_discharge_max=0.5, eta_d=1.25)
        assert config.max_discharge_energy(10.0) == pytest.approx(0.5)

    def test_discharge_respects_reserve(self):
        config = SystemConfig(b_max=10.0, b_min=0.4,
                              b_discharge_max=5.0, eta_d=1.25)
        # Only (0.5 - 0.4)/1.25 = 0.08 can be served at level 0.5.
        assert config.max_discharge_energy(0.5) == pytest.approx(0.08)

    def test_discharge_zero_at_reserve(self):
        config = SystemConfig(b_max=1.0, b_min=0.5)
        assert config.max_discharge_energy(0.5) == 0.0

    def test_charge_respects_rate_cap(self):
        config = SystemConfig(b_max=10.0, b_min=0.0,
                              b_charge_max=0.5, eta_c=0.8)
        assert config.max_charge_energy(0.0) == pytest.approx(0.5)

    def test_charge_respects_capacity(self):
        config = SystemConfig(b_max=1.0, b_min=0.0,
                              b_charge_max=5.0, eta_c=0.8)
        # (1.0 - 0.6)/0.8 = 0.5 absorbable at level 0.6.
        assert config.max_charge_energy(0.6) == pytest.approx(0.5)

    def test_charge_zero_at_full(self):
        config = SystemConfig(b_max=1.0, b_min=0.0)
        assert config.max_charge_energy(1.0) == 0.0


class TestBuilders:
    def test_replace_revalidates(self):
        config = SystemConfig()
        with pytest.raises(ConfigurationError):
            config.replace(eta_c=2.0)

    def test_replace_changes_field(self):
        config = SystemConfig().replace(p_grid=3.0)
        assert config.p_grid == 3.0

    def test_with_battery_minutes(self):
        config = SystemConfig().with_battery_minutes(
            30.0, peak_demand_mw=2.0)
        assert config.b_max == pytest.approx(1.0)
        assert config.b_min == pytest.approx(2.0 / 60.0)

    def test_with_zero_battery_minutes(self):
        config = SystemConfig().with_battery_minutes(
            0.0, peak_demand_mw=2.0)
        assert config.b_max == 0.0
        assert config.b_min == 0.0

    def test_coarse_index(self):
        config = SystemConfig(fine_slots_per_coarse=24)
        assert config.coarse_index(0) == 0
        assert config.coarse_index(23) == 0
        assert config.coarse_index(24) == 1

    def test_coarse_index_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().coarse_index(-1)

    def test_is_coarse_boundary(self):
        config = SystemConfig(fine_slots_per_coarse=12)
        assert config.is_coarse_boundary(0)
        assert config.is_coarse_boundary(12)
        assert not config.is_coarse_boundary(13)
