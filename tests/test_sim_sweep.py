"""Generic sweep runner."""

import pytest

from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.smartdpss import SmartDPSS
from repro.sim.sweep import DEFAULT_METRICS, Sweep
from repro.traces.library import make_paper_traces
from repro.exceptions import ConfigurationError


def v_sweep(values=(0.1, 5.0)) -> Sweep:
    system = paper_system_config(days=2)

    def build(v, seed):
        traces = make_paper_traces(system, seed=seed)
        controller = SmartDPSS(paper_controller_config(v=v))
        return system, controller, traces

    return Sweep(name="V sweep", values=list(values), build=build)


class TestSweep:
    def test_runs_all_values(self):
        table = v_sweep().run(seeds=[1])
        assert len(table.points) == 2
        assert table.points[0].value == 0.1
        assert table.points[0].n_seeds == 1

    def test_seed_averaging(self):
        single = v_sweep((1.0,)).run(seeds=[1])
        double = v_sweep((1.0,)).run(seeds=[1, 2])
        assert double.points[0].n_seeds == 2
        # Averaged value lies between per-seed extremes.
        a = single.points[0].metrics["time_avg_cost"]
        other = v_sweep((1.0,)).run(seeds=[2]) \
            .points[0].metrics["time_avg_cost"]
        mean = double.points[0].metrics["time_avg_cost"]
        assert min(a, other) - 1e-9 <= mean <= max(a, other) + 1e-9

    def test_column_extraction(self):
        table = v_sweep().run(seeds=[1])
        costs = table.column("time_avg_cost")
        assert len(costs) == 2

    def test_unknown_metric_rejected(self):
        table = v_sweep().run(seeds=[1])
        with pytest.raises(KeyError):
            table.column("nope")

    def test_render_contains_values(self):
        table = v_sweep().run(seeds=[1])
        text = table.render()
        assert "V sweep" in text
        assert "time_avg_cost" in text

    def test_monotone_helper(self):
        table = v_sweep((0.1, 5.0)).run(seeds=[1, 2])
        # Availability constant at 1 counts as monotone either way.
        assert table.is_monotone("availability", increasing=True)
        assert table.is_monotone("availability", increasing=False)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            v_sweep(()).run(seeds=[1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            v_sweep().run(seeds=[])

    def test_bad_build_shape_rejected(self):
        sweep = Sweep(name="bad", values=[1],
                      build=lambda v, s: (1, 2))
        with pytest.raises(ConfigurationError):
            sweep.run(seeds=[1])

    def test_observed_traces_variant(self):
        system = paper_system_config(days=2)

        def build(v, seed):
            traces = make_paper_traces(system, seed=seed)
            controller = SmartDPSS(paper_controller_config(v=v))
            return system, controller, traces, traces

        table = Sweep(name="obs", values=[1.0], build=build) \
            .run(seeds=[1])
        assert table.points[0].metrics["availability"] == 1.0

    def test_default_metrics_cover_headlines(self):
        assert {"time_avg_cost", "avg_delay_slots",
                "availability"} <= set(DEFAULT_METRICS)
