"""Cost breakdown and service metrics."""

import numpy as np
import pytest

from repro.sim.metrics import (
    CostBreakdown,
    availability,
    battery_throughput,
    renewable_utilization,
    summarize_costs,
)
from repro.exceptions import ConfigurationError


def series(**overrides):
    base = {name: np.zeros(4) for name in (
        "cost_lt", "cost_rt", "cost_battery", "cost_waste",
        "served_ds", "unserved_ds", "renewable_used",
        "renewable_curtailed", "waste", "charge", "discharge")}
    for key, values in overrides.items():
        base[key] = np.asarray(values, dtype=float)
    return base


class TestCostBreakdown:
    def test_total(self):
        breakdown = CostBreakdown(long_term=10.0, real_time=5.0,
                                  battery=1.0, waste=0.5)
        assert breakdown.total == pytest.approx(16.5)

    def test_time_average(self):
        breakdown = CostBreakdown(10.0, 5.0, 1.0, 0.0)
        assert breakdown.time_average(4) == pytest.approx(4.0)

    def test_time_average_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            CostBreakdown(1.0, 0.0, 0.0, 0.0).time_average(0)

    def test_as_dict(self):
        d = CostBreakdown(1.0, 2.0, 3.0, 4.0).as_dict()
        assert d["total"] == pytest.approx(10.0)

    def test_summarize_from_series(self):
        breakdown = summarize_costs(series(
            cost_lt=[1, 1, 1, 1], cost_rt=[0, 2, 0, 0],
            cost_battery=[0.1, 0, 0, 0], cost_waste=[0, 0, 0.5, 0]))
        assert breakdown.long_term == pytest.approx(4.0)
        assert breakdown.real_time == pytest.approx(2.0)
        assert breakdown.battery == pytest.approx(0.1)
        assert breakdown.waste == pytest.approx(0.5)


class TestAvailability:
    def test_perfect(self):
        assert availability(series(served_ds=[1, 1, 1, 1])) == 1.0

    def test_partial(self):
        value = availability(series(served_ds=[1, 1, 1, 0],
                                    unserved_ds=[0, 0, 0, 1]))
        assert value == pytest.approx(0.75)

    def test_no_demand_is_available(self):
        assert availability(series()) == 1.0


class TestRenewableUtilization:
    def test_full_use(self):
        value = renewable_utilization(series(
            renewable_used=[1, 1, 0, 0]))
        assert value == 1.0

    def test_curtailment_counts_as_loss(self):
        value = renewable_utilization(series(
            renewable_used=[1, 0, 0, 0],
            renewable_curtailed=[1, 0, 0, 0]))
        assert value == pytest.approx(0.5)

    def test_waste_attributed_to_renewables(self):
        value = renewable_utilization(series(
            renewable_used=[2, 0, 0, 0], waste=[1, 0, 0, 0]))
        assert value == pytest.approx(0.5)

    def test_no_production_is_full(self):
        assert renewable_utilization(series()) == 1.0

    def test_never_negative(self):
        value = renewable_utilization(series(
            renewable_used=[0.1, 0, 0, 0], waste=[5, 0, 0, 0]))
        assert value >= 0.0


class TestBatteryThroughput:
    def test_sums_both_directions(self):
        value = battery_throughput(series(charge=[0.5, 0, 0, 0],
                                          discharge=[0, 0.3, 0, 0]))
        assert value == pytest.approx(0.8)
