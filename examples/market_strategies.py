"""Two-timescale market strategies: what is the day-ahead market worth?

The paper's Fig. 7 compares the full two-timescale market ("TM")
against real-time-only ("RTM") purchasing.  This example digs one level
deeper: it shows *where* each strategy buys (volume-weighted prices per
market, purchase split by hour of day) and how the cost-delay parameter
``V`` changes the strategy's aggressiveness in exploiting overnight
price dips for the deferrable MapReduce load.

Run:  python examples/market_strategies.py
"""

import numpy as np

from repro import (
    Simulator,
    SmartDPSS,
    make_paper_traces,
    paper_controller_config,
    paper_system_config,
)


def describe_run(label: str, result, traces) -> None:
    series = result.series
    lt_energy = float(series["gbef_rate"].sum())
    rt_energy = float(series["grt"].sum())
    lt_price = (float(series["cost_lt"].sum()) / lt_energy
                if lt_energy else 0.0)
    rt_price = (float(series["cost_rt"].sum()) / rt_energy
                if rt_energy else 0.0)
    print(f"{label:28s} cost/slot={result.time_average_cost:7.2f}  "
          f"LT {lt_energy:6.0f} MWh @ {lt_price:5.1f}  "
          f"RT {rt_energy:6.0f} MWh @ {rt_price:5.1f}  "
          f"delay={result.average_delay_hours():5.1f}h")


def rt_purchases_by_hour(result) -> np.ndarray:
    grt = result.series["grt"]
    hours = np.arange(grt.size) % 24
    return np.array([grt[hours == h].sum() for h in range(24)])


def main() -> None:
    system = paper_system_config()
    traces = make_paper_traces(system, seed=5)

    print("strategy comparison (V=1):")
    for label, config in [
        ("two markets (TM)", paper_controller_config()),
        ("real-time only (RTM)",
         paper_controller_config(use_long_term_market=False)),
    ]:
        result = Simulator(system, SmartDPSS(config), traces).run()
        describe_run(label, result, traces)

    print()
    print("V controls how hard the deferrable load chases price dips:")
    for v in (0.1, 1.0, 5.0):
        result = Simulator(system,
                           SmartDPSS(paper_controller_config(v=v)),
                           traces).run()
        describe_run(f"TM, V={v:g}", result, traces)
        by_hour = rt_purchases_by_hour(result)
        night = by_hour[:6].sum()
        total = by_hour.sum()
        share = night / total if total else 0.0
        print(f"{'':28s} overnight (00-05h) share of RT purchases: "
              f"{share:.0%}")


if __name__ == "__main__":
    main()
