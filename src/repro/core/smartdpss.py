"""SmartDPSS — the paper's online control algorithm (Algorithm 1).

The controller runs the two-timescale loop:

1. **Long-term-ahead planning** at every coarse boundary ``t = kT``:
   snapshot the Lyapunov queue vector ``Θ(t) = [Q(t), X(t), Y(t)]``
   (the paper's current-statistics approximation — these frozen values
   weight every decision in the coming interval), then solve P4 for the
   advance purchase ``gbef(t)``.

2. **Real-time balancing** at every fine slot ``τ``: solve P5 for
   ``(grt(τ), γ(τ))`` with the frozen weights but the *live* physical
   state (battery caps, current backlog, observed real-time price).

3. **Queue update** at the end of every slot: the delay-aware queue
   ``Y`` advances by eq. (12) using the *realized* service reported by
   the engine, and the battery queue ``X`` tracks the physical level.

The controller needs no statistics of demand, renewables or prices —
only the current observations — which is the paper's headline property.
Prices are normalized by ``config.price_scale`` before entering any
Lyapunov expression (see :class:`~repro.config.control.SmartDPSSConfig`).
"""

from __future__ import annotations

from repro.config.control import ObjectiveMode, SmartDPSSConfig
from repro.config.system import SystemConfig
from repro.core.bounds import BoundVariant, compute_bounds
from repro.core.interfaces import (
    Controller,
    CoarseObservation,
    FineObservation,
    RealTimeDecision,
    SlotFeedback,
)
from repro.core.p4 import P4Solution, P4State, solve_p4
from repro.core.p5 import SlotState, solve_p5
from repro.core.virtual_queues import (
    BatteryVirtualQueue,
    DelayAwareQueue,
    operational_shift,
    paper_shift,
)
from repro.exceptions import ConfigurationError


class _RunningMean:
    """Streaming mean of observed prices (no statistics assumed)."""

    def __init__(self, initial: float | None = None):
        self._sum = 0.0
        self._count = 0
        self._initial = initial

    @property
    def value(self) -> float:
        if self._count == 0:
            return 0.0 if self._initial is None else self._initial
        return self._sum / self._count

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1

    def reset(self) -> None:
        self._sum = 0.0
        self._count = 0

    def state(self) -> dict:
        """Exact snapshot — including the ``initial`` seed.

        The seed is part of the state on purpose: before any
        observation ``value`` *is* the seed, so restoring sum/count
        without it would silently change the mean (the bug the
        explicit state API exists to prevent).
        """
        return {"sum": self._sum, "count": self._count,
                "initial": self._initial}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot exactly (seed included)."""
        count = int(state["count"])
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._sum = float(state["sum"])
        self._count = count
        self._initial = None if state["initial"] is None \
            else float(state["initial"])


class SmartDPSS(Controller):
    """The paper's online two-timescale Lyapunov controller."""

    def __init__(self, config: SmartDPSSConfig | None = None):
        self.config = config or SmartDPSSConfig()
        self.system: SystemConfig | None = None
        self._y_queue = DelayAwareQueue(self.config.epsilon)
        self._x_queue = BatteryVirtualQueue(shift=0.0)
        self._rt_price_mean = _RunningMean()
        # Frozen coarse-boundary snapshot (the paper's approximation).
        self._q_hat = 0.0
        self._y_hat = 0.0
        self._x_hat = 0.0
        self._planned_rate = 0.0

    # ------------------------------------------------------------------
    # Introspection (used by analysis and tests)
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        mode = self.config.objective_mode.value
        return f"SmartDPSS(V={self.config.v:g}, mode={mode})"

    @property
    def delay_queue(self) -> DelayAwareQueue:
        """The ``Y`` virtual queue (live)."""
        return self._y_queue

    @property
    def battery_queue(self) -> BatteryVirtualQueue:
        """The ``X`` virtual queue (live)."""
        return self._x_queue

    @property
    def frozen_weights(self) -> tuple[float, float, float]:
        """Current coarse-interval snapshot ``(Q̂, Ŷ, X̂)``."""
        return self._q_hat, self._y_hat, self._x_hat

    # ------------------------------------------------------------------
    # Normalization helpers
    # ------------------------------------------------------------------

    def _normalize(self, price: float) -> float:
        return price / self.config.price_scale

    def _normalized_cap(self) -> float:
        assert self.system is not None
        return self.system.p_max / self.config.price_scale

    def _shift_point(self) -> float:
        """Battery-queue shift for the configured mode."""
        assert self.system is not None
        system = self.system
        if self.config.battery_shift_mode == "paper":
            bounds = compute_bounds(system, self.config.v,
                                    self.config.epsilon,
                                    self._normalized_cap(),
                                    variant=BoundVariant.PAPER)
            return paper_shift(bounds.u_max, system.b_min,
                               system.b_discharge_max, system.eta_d)
        return operational_shift(system.b_min, system.b_max,
                                 self.config.v, self._rt_price_mean.value)

    # ------------------------------------------------------------------
    # Controller protocol
    # ------------------------------------------------------------------

    def begin_horizon(self, system: SystemConfig) -> None:
        self.system = system
        self._y_queue = DelayAwareQueue(self.config.epsilon)
        self._x_queue = BatteryVirtualQueue(shift=0.0)
        self._rt_price_mean = _RunningMean()
        self._q_hat = 0.0
        self._y_hat = 0.0
        self._x_hat = 0.0
        self._planned_rate = 0.0

    def plan_long_term(self, obs: CoarseObservation) -> float:
        state = self.prepare_plan(obs)
        if state is None:
            return 0.0
        return self.commit_plan(
            solve_p4(state, self.config.objective_mode))

    def prepare_plan(self, obs: CoarseObservation) -> P4State | None:
        """Freeze the interval weights and build the P4 subproblem.

        Everything :meth:`plan_long_term` does *except* solving P4 —
        split out so the batch engine can pool many scenarios' P4
        solves into one call (:func:`repro.core.p4.solve_p4_many`).
        Returns ``None`` when the long-term market is disabled (the
        plan is then a zero purchase and there is nothing to solve).
        """
        assert self.system is not None, "begin_horizon() not called"
        system = self.system
        price_lt = self._normalize(obs.price_lt)
        if self._rt_price_mean._count == 0:
            # Before any real-time observation, seed the reference with
            # the first contract price (no a-priori statistics needed).
            self._rt_price_mean = _RunningMean(initial=price_lt)

        # Freeze the Lyapunov weights for the coming interval.
        self._x_queue.retarget(self._shift_point())
        self._q_hat = obs.backlog
        self._y_hat = self._y_queue.value
        self._x_hat = self._x_queue.observe(obs.battery_level)

        battery_usable = (self.config.use_battery
                          and obs.cycle_budget_left != 0)
        if battery_usable:
            # The battery's stored energy can be spent once over the
            # window, not once per slot: spread it over T slots so the
            # feasibility floor stays honest for small batteries.
            usable_energy = max(
                0.0, obs.battery_level - system.b_min) / system.eta_d
            discharge_avail = min(
                system.b_discharge_max,
                usable_energy / system.fine_slots_per_coarse)
            charge_headroom_total = (
                max(0.0, system.b_max - obs.battery_level)
                / system.eta_c)
        else:
            discharge_avail = 0.0
            charge_headroom_total = 0.0

        if not self.config.use_long_term_market:
            self._planned_rate = 0.0
            return None

        return P4State(
            v=self.config.v,
            price_lt=price_lt,
            q_hat=self._q_hat,
            y_hat=self._y_hat,
            x_hat=self._x_hat,
            t_slots=system.fine_slots_per_coarse,
            demand_ds=obs.demand_ds,
            renewable=obs.renewable,
            battery_level=obs.battery_level,
            p_grid=system.p_grid,
            discharge_avail=discharge_avail,
            charge_headroom_total=charge_headroom_total,
            eta_c=system.eta_c,
            s_dt_max=system.s_dt_max,
            waste_penalty=self._normalize(system.waste_penalty),
            profile_demand_ds=obs.profile_demand_ds,
            profile_demand_dt=obs.profile_demand_dt,
            profile_renewable=obs.profile_renewable,
            profile_price_rt=tuple(
                [self._normalize(p) for p in obs.profile_price_rt]),
            plan_deferrable_arrivals=self.config.plan_deferrable_arrivals,
        )

    def commit_plan(self, solution: P4Solution) -> float:
        """Record a solved plan; returns the advance purchase."""
        self._planned_rate = solution.rate
        return solution.gbef

    def real_time(self, obs: FineObservation) -> RealTimeDecision:
        assert self.system is not None, "begin_horizon() not called"
        system = self.system
        price_rt = self._normalize(obs.price_rt)
        self._rt_price_mean.observe(price_rt)

        battery_usable = (self.config.use_battery
                          and obs.cycle_budget_left != 0)
        charge_cap = (system.max_charge_energy(obs.battery_level)
                      if battery_usable else 0.0)
        discharge_cap = (system.max_discharge_energy(obs.battery_level)
                         if battery_usable else 0.0)

        state = SlotState(
            q_hat=self._q_hat,
            y_hat=self._y_hat,
            x_hat=self._x_hat,
            v=self.config.v,
            price_rt=price_rt,
            battery_op_cost=self._normalize(system.battery_op_cost),
            waste_penalty=self._normalize(system.waste_penalty),
            battery_margin=self._normalize(
                self.config.battery_price_margin),
            backlog=obs.backlog,
            gbef_rate=obs.long_term_rate,
            renewable=obs.renewable,
            demand_ds=obs.demand_ds,
            charge_cap=charge_cap,
            discharge_cap=discharge_cap,
            eta_c=system.eta_c,
            eta_d=system.eta_d,
            s_dt_max=system.s_dt_max,
            grt_cap=min(obs.grid_headroom, obs.supply_headroom),
        )
        solution = solve_p5(state, self.config.objective_mode)
        return RealTimeDecision(grt=solution.grt, gamma=solution.gamma)

    def end_slot(self, feedback: SlotFeedback) -> None:
        self._y_queue.update(feedback.served_dt, feedback.had_backlog)
        self._x_queue.observe(feedback.battery_level)
