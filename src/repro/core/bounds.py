"""Analytical constants of the paper's performance theory.

Implements every constant appearing in Theorem 1 (drift-plus-penalty
bound), Corollary 1 (loosened bound under the current-statistics
approximation), Theorem 2 (queue/battery/delay/cost bounds), Theorem 3
(robustness) and Corollary 2 (scalability):

    H1   = Sdtmax² + ½(Ddtmax² + Bcmax²ηc² + Bdmax²ηd² + ε²)
    H2   = H1 + T(T−1)Bcmax²ηc² + T(T−1)ε²
    H3   = H2 + T·θmax(2Sdtmax + Ddtmax + Bcmax·ηc + Bdmax·ηd + ε)
    Vmax = T(Bmax − Bmin − Bdmax·ηd − Bcmax·ηc − Ddtmax − ε)/Pmax
    Qmax = V·Pmax/T + Ddtmax      Ymax = V·Pmax/T + ε
    Umax = V·Pmax/T + Ddtmax + ε
    λmax = ⌈(2V·Pmax/T + Ddtmax + ε)/ε⌉
    cost gap ≤ H2/V   (H3/V with estimation error)

Two variants are provided because the paper's Algorithm 1 and its
Theorem 2 disagree on a factor of ``T``: P4/P5 compare queue sums
against ``V·plt`` (no ``1/T``), while the theorem's bounds carry
``V·Pmax/T``.  ``BoundVariant.PAPER`` reports the printed formulas;
``BoundVariant.IMPLEMENTATION`` replaces ``Pmax/T → Pmax`` so the
bounds match the algorithm as actually specified (and as implemented
here) — the property-based tests check the implementation variant
against simulations.

Prices here are *normalized* controller units (see
``SmartDPSSConfig``-driven normalization in :mod:`repro.core.smartdpss`);
pass the normalized price cap for consistent magnitudes.

:func:`compute_bounds` is array-capable: ``v`` / ``epsilon`` /
``price_cap`` / ``theta_max`` may each be a ``(B,)`` array, and
``system`` may be a :class:`SystemArrays` bundle stacking ``B``
physical systems.  Every constant is then evaluated elementwise with
the exact arithmetic of the scalar call — the batch planning stage
(:meth:`repro.core.smartdpss_vec.VecSmartDPSS.prepare_plan_batch`)
relies on this to select paper-mode shift points for a whole batch in
one pass, bit-identical to ``B`` scalar calls.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config.system import SystemConfig
from repro.exceptions import ConfigurationError


class BoundVariant(str, enum.Enum):
    """Which reading of the theorem constants to report."""

    PAPER = "paper"                    # V·Pmax/T thresholds, as printed
    IMPLEMENTATION = "implementation"  # V·Pmax thresholds, as coded


@dataclass(frozen=True)
class SystemArrays:
    """Array-valued stand-in for :class:`SystemConfig` field access.

    Carries exactly the physical fields :func:`compute_bounds` reads,
    each as a ``(B,)`` array (or scalar), so one call evaluates the
    theorem constants for ``B`` systems at once.  Build with
    :meth:`stack`.
    """

    fine_slots_per_coarse: object
    s_dt_max: object
    d_dt_max: object
    b_max: object
    b_min: object
    b_charge_max: object
    b_discharge_max: object
    eta_c: object
    eta_d: object

    @classmethod
    def stack(cls, systems: Sequence[SystemConfig]) -> "SystemArrays":
        """Stack the bound-relevant fields of many systems."""

        def pull(name: str) -> np.ndarray:
            return np.array([float(getattr(s, name)) for s in systems])

        return cls(
            fine_slots_per_coarse=pull("fine_slots_per_coarse"),
            s_dt_max=pull("s_dt_max"),
            d_dt_max=pull("d_dt_max"),
            b_max=pull("b_max"),
            b_min=pull("b_min"),
            b_charge_max=pull("b_charge_max"),
            b_discharge_max=pull("b_discharge_max"),
            eta_c=pull("eta_c"),
            eta_d=pull("eta_d"),
        )


@dataclass(frozen=True)
class TheoreticalBounds:
    """All constants from Theorems 1-3 for one configuration.

    With array inputs every field is a ``(B,)`` array (``lambda_max``
    integer-valued) and :attr:`theory_applies` reports whether the
    precondition can hold for *every* scenario in the batch.
    """

    h1: float
    h2: float
    h3: float
    v_max: float
    q_max: float
    y_max: float
    u_max: float
    lambda_max: int
    cost_gap: float
    variant: BoundVariant

    @property
    def theory_applies(self) -> bool:
        """Whether the Theorem 2 precondition ``0 < V ≤ Vmax`` can hold.

        The paper's own evaluation battery violates it (the safety
        margins exceed ``Bmax``); experiments then rely on the
        engine's physical clamps instead of the Lyapunov battery
        argument.  For array-valued bounds this is True only when the
        precondition can hold for every scenario.
        """
        return bool(np.all(np.asarray(self.v_max) > 0))


def compute_bounds(system: SystemConfig | SystemArrays,
                   v,
                   epsilon,
                   price_cap,
                   theta_max=0.0,
                   variant: BoundVariant = BoundVariant.IMPLEMENTATION,
                   ) -> TheoreticalBounds:
    """Evaluate every theorem constant for one configuration.

    Parameters
    ----------
    system:
        Physical system (battery caps, demand caps, ``T``), or a
        :class:`SystemArrays` bundle of ``B`` systems.
    v / epsilon:
        Controller parameters (scalars or ``(B,)`` arrays).
    price_cap:
        ``Pmax`` in the controller's (normalized) price units.
    theta_max:
        Queue-estimation error bound of Theorem 3 (0 → ``H3 = H2``).
    variant:
        Paper-literal or implementation-consistent (see module doc).

    Scalar and array calls share every arithmetic expression, so the
    array form is elementwise bit-identical to per-scenario scalar
    calls (the batch planning stage depends on this for ``u_max``).
    """
    if np.any(np.asarray(v) <= 0):
        raise ConfigurationError(f"V must be > 0, got {v}")
    if np.any(np.asarray(epsilon) <= 0):
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    if np.any(np.asarray(price_cap) <= 0):
        raise ConfigurationError(f"price cap must be > 0, got {price_cap}")
    if np.any(np.asarray(theta_max) < 0):
        raise ConfigurationError(f"theta_max must be >= 0, got {theta_max}")

    t_slots = system.fine_slots_per_coarse
    charge_sq = (system.b_charge_max * system.eta_c) ** 2
    discharge_sq = (system.b_discharge_max * system.eta_d) ** 2

    h1 = (system.s_dt_max ** 2
          + 0.5 * (system.d_dt_max ** 2 + charge_sq + discharge_sq
                   + epsilon ** 2))
    h2 = (h1 + t_slots * (t_slots - 1) * charge_sq
          + t_slots * (t_slots - 1) * epsilon ** 2)
    h3 = h2 + t_slots * theta_max * (
        2.0 * system.s_dt_max + system.d_dt_max
        + system.b_charge_max * system.eta_c
        + system.b_discharge_max * system.eta_d + epsilon)

    v_max = t_slots * (system.b_max - system.b_min
                       - system.b_discharge_max * system.eta_d
                       - system.b_charge_max * system.eta_c
                       - system.d_dt_max - epsilon) / price_cap

    if variant is BoundVariant.PAPER:
        threshold = v * price_cap / t_slots
        q_growth = system.d_dt_max
        y_growth = epsilon
    else:
        # The algorithm as specified compares Q + Y against V·plt (no
        # 1/T), and its Lyapunov weights are frozen for a whole coarse
        # window, during which the queues can grow unchecked — hence
        # the T-scaled growth terms.
        threshold = v * price_cap
        q_growth = t_slots * system.d_dt_max
        y_growth = t_slots * epsilon
    q_max = threshold + q_growth
    y_max = threshold + y_growth
    u_max = threshold + q_growth + y_growth
    lambda_raw = (2.0 * threshold + q_growth + y_growth) / epsilon
    if isinstance(lambda_raw, np.ndarray):
        lambda_max = np.ceil(lambda_raw).astype(np.int64)
    else:
        lambda_max = math.ceil(lambda_raw)
    if isinstance(theta_max, np.ndarray):
        cost_gap = np.where(theta_max > 0, h3, h2) / v
    else:
        cost_gap = (h3 if theta_max > 0 else h2) / v

    return TheoreticalBounds(h1=h1, h2=h2, h3=h3, v_max=v_max,
                             q_max=q_max, y_max=y_max, u_max=u_max,
                             lambda_max=lambda_max, cost_gap=cost_gap,
                             variant=variant)


def scaled_bounds(bounds: TheoreticalBounds, beta: float,
                  alpha: float, theta_max: float,
                  system: SystemConfig,
                  epsilon: float) -> dict[str, float]:
    """Corollary 2: constants under ``β``-fold system expansion.

    ``H1(β) = β·H1``, ``H2(β) = β·H2`` and
    ``H3(β) = β·H2 + T·β^α·θmax·(2Sdtmax + Ddtmax + Bcmax·ηc +
    Bdmax·ηd + ε)``, with ``α ∈ [1/2, 1]`` the workload-similarity /
    renewable-correlation exponent.
    """
    if beta < 1:
        raise ConfigurationError(f"beta must be >= 1, got {beta}")
    if not 0.5 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [1/2, 1], got {alpha}")
    t_slots = system.fine_slots_per_coarse
    robustness_term = t_slots * (beta ** alpha) * theta_max * (
        2.0 * system.s_dt_max + system.d_dt_max
        + system.b_charge_max * system.eta_c
        + system.b_discharge_max * system.eta_d + epsilon)
    return {
        "h1": beta * bounds.h1,
        "h2": beta * bounds.h2,
        "h3": beta * bounds.h2 + robustness_term,
    }
