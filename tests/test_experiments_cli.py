"""Experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import build_parser, list_experiments, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment is None
        assert args.seed is None

    def test_experiment_and_options(self):
        args = build_parser().parse_args(
            ["fig5", "--seed", "7", "--days", "3"])
        assert args.experiment == "fig5"
        assert args.seed == 7
        assert args.days == 3


class TestListing:
    def test_lists_every_experiment(self):
        listing = list_experiments()
        for experiment_id in ("fig5", "fig6_v", "fig6_t", "fig7",
                              "fig8", "fig9", "fig10", "ablations"):
            assert experiment_id in listing


class TestMain:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_fig5_short(self, capsys):
        assert main(["fig5", "--days", "2", "--seed", "4"]) == 0
        captured = capsys.readouterr()
        assert "Fig 5" in captured.out
        # Progress/diagnostics log to stderr; tables stay on stdout.
        assert "finished in" in captured.err
