"""SimulationResult summaries."""

import pytest

from repro.baselines.impatient import ImpatientController
from repro.config.presets import paper_controller_config
from repro.core.smartdpss import SmartDPSS
from repro.sim.engine import run_simulation


@pytest.fixture
def result(small_system, small_traces):
    return run_simulation(small_system,
                          SmartDPSS(paper_controller_config()),
                          small_traces)


class TestCostProperties:
    def test_total_matches_series_sum(self, result):
        assert result.total_cost == pytest.approx(
            float(result.series["cost_total"].sum()))

    def test_time_average(self, result):
        assert result.time_average_cost == pytest.approx(
            result.total_cost / result.n_slots)

    def test_breakdown_sums_to_total(self, result):
        breakdown = result.costs
        assert breakdown.total == pytest.approx(result.total_cost)

    def test_n_slots(self, result, small_system):
        assert result.n_slots == small_system.horizon_slots


class TestServiceProperties:
    def test_delay_hours_conversion(self, result, small_system):
        assert result.average_delay_hours() == pytest.approx(
            result.average_delay_slots * small_system.slot_hours)

    def test_availability_one_on_sane_config(self, result):
        assert result.availability == 1.0
        assert result.unserved_ds_total == 0.0

    def test_battery_range_ordered(self, result):
        lo, hi = result.battery_range
        assert lo <= hi

    def test_peak_backlog_bounds_final(self, result):
        assert result.final_backlog <= result.peak_backlog + 1e-12

    def test_renewable_utilization_in_unit_interval(self, result):
        assert 0.0 <= result.renewable_utilization <= 1.0


class TestSummary:
    def test_summary_keys(self, result):
        summary = result.summary()
        expected = {
            "time_avg_cost", "total_cost", "cost_lt", "cost_rt",
            "cost_battery", "cost_waste", "avg_delay_slots",
            "worst_delay_slots", "availability", "waste_mwh",
            "battery_ops", "renewable_utilization", "peak_backlog",
            "final_backlog"}
        assert set(summary) == expected

    def test_summary_consistency(self, result):
        summary = result.summary()
        assert summary["time_avg_cost"] == pytest.approx(
            result.time_average_cost)
        assert summary["battery_ops"] == result.battery_operations

    def test_controller_name_propagated(self, small_system,
                                        small_traces):
        result = run_simulation(small_system, ImpatientController(),
                                small_traces)
        assert result.controller_name == "Impatient"
