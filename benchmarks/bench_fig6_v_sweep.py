"""Bench Fig. 6(a,b) — cost and delay versus ``V``.

The headline reproduction: the ``[O(1/V), O(V)]`` cost-delay trade-off.
Assertions encode the paper's claimed shape: cost falls toward the
offline optimum as ``V`` grows, delay rises roughly linearly, and
SmartDPSS sits between Impatient (cost) and the offline optimum.
"""

from conftest import emit, run_once

from repro.experiments.fig6_v_sweep import render, run_fig6_v


def test_fig6_v_sweep(benchmark):
    result = run_once(benchmark, run_fig6_v)
    emit("fig6_v", render(result))

    rows = result.rows
    # Shape: cost noninc / delay nondec across the sweep.
    assert result.cost_monotone_nonincreasing
    assert result.delay_monotone_nondecreasing
    # Endpoints move materially (the trade-off is real, not noise).
    assert rows[-1].time_avg_cost < rows[0].time_avg_cost * 0.97
    assert rows[-1].avg_delay_slots > rows[0].avg_delay_slots * 3.0
    # SmartDPSS beats Impatient on cost at every V...
    assert all(r.time_avg_cost < result.impatient_cost for r in rows)
    # ...and never beats the clairvoyant offline optimum.
    assert all(r.time_avg_cost > result.offline_cost for r in rows)
    # Availability is never sacrificed.
    assert all(r.availability == 1.0 for r in rows)
