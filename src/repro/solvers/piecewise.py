"""Exact minimization of piecewise-linear objectives by vertex enumeration.

The real-time subproblem P5 is *not* a plain LP: the battery operation
indicator ``n(τ)·Cb`` introduces a jump, and charge/discharge/waste are
hinge functions ``[·]⁺`` of the decisions.  But it has a special
structure this module exploits:

* the decision region is a box (``grt`` and ``γ`` each live in an
  interval);
* within the box, every hinge breakpoint is a *line of constant net
  surplus* — all such lines are parallel (slope ``∂grt/∂γ = Q``);
* the objective is linear on each cell of the induced subdivision.

A function that is linear on every cell of a subdivision attains its
minimum at a vertex of the subdivision; the jump term only adds the
candidate "exactly zero battery activity", which lies *on* a breakpoint
line.  Enumerating all (box corner) × (breakpoint line ∩ box edge)
points and evaluating the exact objective is therefore optimal — no
iterative solver, no tolerance tuning.

:func:`piecewise_candidates_1d` handles the analogous one-dimensional
case used by P4 and by tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np
from repro.exceptions import ConfigurationError


def minimize_over_candidates(
        objective: Callable[..., float],
        candidates: Iterable[tuple],
) -> tuple[float, tuple]:
    """Evaluate ``objective`` at every candidate; return (best, argbest).

    Ties break toward the earlier candidate, which callers exploit by
    listing "do nothing" first so zero-cost ties stay inactive.
    """
    best_value = None
    best_point = None
    for point in candidates:
        value = objective(*point)
        if best_value is None or value < best_value - 1e-12:
            best_value = value
            best_point = point
    if best_point is None:
        raise ConfigurationError("no candidates supplied")
    return best_value, best_point


def piecewise_candidates_1d(lower: float, upper: float,
                            breakpoints: Sequence[float]) -> list[float]:
    """Candidate points for a 1-D piecewise-linear minimization.

    Returns the interval ends plus every breakpoint clipped into the
    interval, deduplicated and sorted.  Evaluating a piecewise-linear
    function at these points finds its exact minimum over
    ``[lower, upper]``.
    """
    if lower > upper:
        raise ConfigurationError(f"empty interval [{lower}, {upper}]")
    array = np.asarray(breakpoints, dtype=float)
    inside = array[(lower <= array) & (array <= upper)]
    ends = np.array([lower, upper], dtype=float)
    return np.unique(np.concatenate((ends, inside))).tolist()


def box_edge_candidates(grt_bounds: tuple[float, float],
                        gamma_bounds: tuple[float, float],
                        slope: float,
                        intercepts: Sequence[float],
                        ) -> list[tuple[float, float]]:
    """Vertices for P5's parallel-line subdivision of a box.

    The box is ``grt ∈ [g0, g1] × γ ∈ [c0, c1]``; each intercept ``q``
    defines the line ``grt = slope·γ + q``.  Returns the four box
    corners plus every intersection of a line with a box edge.

    With ``slope = Q(t)`` these lines are exactly the loci where the
    net surplus (and hence some hinge term of P5) changes regime, so
    the returned set contains an optimizer of any function linear on
    the subdivision cells.
    """
    g0, g1 = grt_bounds
    c0, c1 = gamma_bounds
    if g0 > g1 or c0 > c1:
        raise ConfigurationError(
            f"empty box [{g0},{g1}] x [{c0},{c1}]")
    candidates: list[tuple[float, float]] = [
        (g0, c0), (g0, c1), (g1, c0), (g1, c1),
    ]
    for q in intercepts:
        # Intersections with the horizontal edges γ = c0, γ = c1.
        for gamma in (c0, c1):
            grt = slope * gamma + q
            if g0 - 1e-12 <= grt <= g1 + 1e-12:
                candidates.append((min(max(grt, g0), g1), gamma))
        # Intersections with the vertical edges grt = g0, grt = g1.
        if abs(slope) > 1e-15:
            for grt in (g0, g1):
                gamma = (grt - q) / slope
                if c0 - 1e-12 <= gamma <= c1 + 1e-12:
                    candidates.append((grt, min(max(gamma, c0), c1)))
    return candidates
