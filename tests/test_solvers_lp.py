"""LP model builder and HiGHS backend."""

import numpy as np
import pytest

from repro.exceptions import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
)
from repro.solvers.highs import solve_with_highs
from repro.solvers.linear_program import LpModel


class TestModelBuilding:
    def test_variable_handles(self):
        model = LpModel()
        x = model.add_var("x", lb=0, ub=5, cost=1.0)
        y = model.add_var("y")
        assert x.index == 0 and y.index == 1
        assert model.n_vars == 2
        assert model.variable_names() == ["x", "y"]

    def test_bad_bounds_rejected(self):
        model = LpModel()
        with pytest.raises(SolverError):
            model.add_var("x", lb=2.0, ub=1.0)

    def test_foreign_variable_rejected(self):
        model_a = LpModel()
        model_b = LpModel()
        x = model_a.add_var("x")
        model_b.add_var("y")
        x_fake = type(x)(index=5, name="ghost")
        with pytest.raises(SolverError):
            model_b.add_le({x_fake: 1.0}, 1.0)

    def test_duplicate_var_coefficients_sum(self):
        model = LpModel()
        x = model.add_var("x", lb=0, ub=10, cost=1.0)
        model.add_le({x: 1.0}, 4.0)
        compiled = model.compile(use_sparse=False)
        assert compiled["A_ub"][0, 0] == 1.0

    def test_empty_model_rejected(self):
        with pytest.raises(SolverError):
            LpModel().compile()

    def test_constraint_counting(self):
        model = LpModel()
        x = model.add_var("x")
        model.add_le({x: 1.0}, 1.0)
        model.add_ge({x: 1.0}, 0.0)
        model.add_eq({x: 1.0}, 0.5)
        assert model.n_constraints == 3

    def test_sparse_and_dense_compile_agree(self):
        model = LpModel()
        x = model.add_var("x", cost=1.0)
        y = model.add_var("y", cost=2.0)
        model.add_le({x: 1.0, y: 3.0}, 6.0)
        model.add_eq({y: 2.0}, 2.0)
        dense = model.compile(use_sparse=False)
        sparse = model.compile(use_sparse=True)
        assert np.allclose(dense["A_ub"], sparse["A_ub"].toarray())
        assert np.allclose(dense["A_eq"], sparse["A_eq"].toarray())


class TestHighsBackend:
    def test_simple_minimization(self):
        model = LpModel()
        x = model.add_var("x", lb=0.0, cost=2.0)
        y = model.add_var("y", lb=0.0, cost=3.0)
        model.add_ge({x: 1.0, y: 1.0}, 4.0)
        solution = solve_with_highs(model)
        # Cheaper variable takes the whole constraint.
        assert solution.objective == pytest.approx(8.0)
        assert solution.value(x) == pytest.approx(4.0)
        assert solution.value(y) == pytest.approx(0.0)

    def test_values_vectorized(self):
        model = LpModel()
        xs = [model.add_var(f"x{i}", lb=float(i), ub=float(i))
              for i in range(4)]
        solution = solve_with_highs(model)
        assert np.allclose(solution.values(xs), [0, 1, 2, 3])

    def test_infeasible_raises(self):
        model = LpModel()
        x = model.add_var("x", lb=0.0, ub=1.0)
        model.add_ge({x: 1.0}, 2.0)
        with pytest.raises(InfeasibleProblemError):
            solve_with_highs(model)

    def test_unbounded_raises(self):
        model = LpModel()
        model.add_var("x", lb=-np.inf, ub=np.inf, cost=1.0)
        with pytest.raises(UnboundedProblemError):
            solve_with_highs(model)

    def test_equality_constraints(self):
        model = LpModel()
        x = model.add_var("x", lb=0.0, cost=1.0)
        y = model.add_var("y", lb=0.0, cost=1.0)
        model.add_eq({x: 1.0, y: 1.0}, 3.0)
        model.add_eq({x: 1.0, y: -1.0}, 1.0)
        solution = solve_with_highs(model)
        assert solution.value(x) == pytest.approx(2.0)
        assert solution.value(y) == pytest.approx(1.0)

    def test_dense_path(self):
        model = LpModel()
        x = model.add_var("x", lb=0.0, ub=2.0, cost=-1.0)
        solution = solve_with_highs(model, use_sparse=False)
        assert solution.value(x) == pytest.approx(2.0)


class _FakeLinprogResult:
    def __init__(self, status, x=None, fun=None,
                 message="synthetic status"):
        self.status = status
        self.x = x
        self.fun = fun
        self.message = message


class TestStatusPaths:
    """All four linprog status codes map to typed outcomes.

    The real solver cannot be coaxed into an iteration-limit
    termination on a toy model, so ``linprog`` is monkeypatched to
    return each status code verbatim — what's under test is the
    mapping, which both :func:`solve_with_highs` and the compiled
    multi-instance path route through :func:`raise_for_status`.
    """

    @staticmethod
    def _solve(monkeypatch, result):
        model = LpModel("status-probe")
        model.add_var("x", lb=0.0, ub=1.0, cost=1.0)
        monkeypatch.setattr("repro.solvers.highs.linprog",
                            lambda **kwargs: result)
        return solve_with_highs(model)

    def test_ok_returns_solution(self, monkeypatch):
        result = _FakeLinprogResult(0, x=np.array([0.25]), fun=0.25)
        solution = self._solve(monkeypatch, result)
        assert solution.objective == pytest.approx(0.25)
        assert solution.status == "optimal"

    def test_iteration_limit_typed_and_actionable(self, monkeypatch):
        from repro.exceptions import IterationLimitError

        with pytest.raises(IterationLimitError) as excinfo:
            self._solve(monkeypatch, _FakeLinprogResult(1))
        message = str(excinfo.value)
        assert "status-probe" in message          # names the model
        assert "iteration limit" in message       # names the failure
        assert "maxiter" in message               # names the remedy
        assert excinfo.value.status == "iteration_limit"
        # The typed error is still a SolverError for broad handlers.
        assert isinstance(excinfo.value, SolverError)

    def test_infeasible_status_mapped(self, monkeypatch):
        with pytest.raises(InfeasibleProblemError) as excinfo:
            self._solve(monkeypatch, _FakeLinprogResult(2))
        assert excinfo.value.status == "infeasible"

    def test_unbounded_status_mapped(self, monkeypatch):
        with pytest.raises(UnboundedProblemError) as excinfo:
            self._solve(monkeypatch, _FakeLinprogResult(3))
        assert excinfo.value.status == "unbounded"

    def test_unknown_status_falls_back(self, monkeypatch):
        with pytest.raises(SolverError) as excinfo:
            self._solve(monkeypatch, _FakeLinprogResult(4))
        assert excinfo.value.status == "4"

    def test_missing_solution_rejected(self, monkeypatch):
        with pytest.raises(SolverError, match="no solution"):
            self._solve(monkeypatch,
                        _FakeLinprogResult(0, x=None, fun=None))

    def test_raise_for_status_ok_is_silent(self):
        from repro.solvers.highs import STATUS_OK, raise_for_status

        raise_for_status(STATUS_OK, "any-model")
