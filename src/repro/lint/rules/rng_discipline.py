"""R001 rng-discipline: Generators are minted only via ``repro.rng``.

The bit-identity seed contract (scalar == batch == streamed ==
workspace records, seed-deterministic fleet resume) holds because every
stochastic draw comes from a named, independently-seeded
``numpy.random.Generator`` handed down from :mod:`repro.rng`.  A stray
``np.random.default_rng()``, a module-level ``np.random.*`` draw, or
stdlib :mod:`random` would tie results to construction order or global
state and silently break replay.

Flagged anywhere under ``src/repro`` except ``repro/rng.py`` (the one
module allowed to touch seeding machinery):

* ``import random`` / ``from random import ...`` (stdlib PRNG);
* any runtime reference into the ``np.random`` / ``numpy.random``
  namespace — ``default_rng``, ``seed``, draw functions,
  ``RandomState`` — except the :class:`~numpy.random.Generator` /
  ``BitGenerator`` *types* (legitimate in signatures and isinstance
  checks).  Type annotations are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, dotted_name

#: np.random attributes that are types, not seeding/drawing machinery.
_ALLOWED_ATTRS = frozenset({"Generator", "BitGenerator"})

_EXEMPT_SUFFIX = "repro/rng.py"


class RngDiscipline(Rule):
    id = "R001"
    name = "rng-discipline"
    summary = ("mint Generators only via repro.rng; no stdlib random, "
               "no np.random draws or default_rng")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.posix.endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            ctx, node,
                            "stdlib `random` is forbidden; draw from a "
                            "repro.rng substream Generator instead")
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None \
                        and node.module.split(".")[0] == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib `random` is forbidden; draw from a "
                        "repro.rng substream Generator instead")
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if alias.name in ("default_rng", "RandomState",
                                          "seed", "random"):
                            yield self.finding(
                                ctx, node,
                                f"importing numpy.random.{alias.name} "
                                "bypasses the repro.rng seed contract")
            elif isinstance(node, ast.Attribute):
                if ctx.in_annotation(node):
                    continue
                name = dotted_name(node)
                if name is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if name.startswith(prefix):
                        attr = name[len(prefix):].split(".")[0]
                        if attr not in _ALLOWED_ATTRS:
                            yield self.finding(
                                ctx, node,
                                f"`{name}` bypasses the repro.rng seed "
                                "contract; mint Generators with "
                                "repro.rng.make_rng / RngFactory")
                        break


RULE = RngDiscipline()
