"""The repro-lint engine: findings, rules, suppressions, file walking.

``repro.lint`` is a purpose-built static checker for the handful of
coding disciplines this reproduction's headline guarantees rest on
(bit-identical records, seed-deterministic resume, torn-write-tolerant
stores).  It is **not** a general linter: every rule encodes one
repo-specific invariant, checked against the stdlib :mod:`ast` so the
whole tool has zero dependencies and runs in well under ten seconds
over ``src/repro``.

Vocabulary:

* A :class:`Rule` inspects one parsed module (:class:`ModuleContext`)
  and yields :class:`Finding` objects.  One module per rule lives in
  :mod:`repro.lint.rules`.
* An inline comment ``# replint: ignore[R00x] <reason>`` on the
  flagged line suppresses that rule there; the reason is mandatory
  (an unexplained suppression is itself a finding, ``R000``).
* A baseline file (see :mod:`repro.lint.baseline`) grandfathers
  accepted legacy findings by content fingerprint, so the tree can be
  gated at zero *new* findings while old debt is burned down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ConfigurationError

#: Pseudo-rule id for problems with the lint run itself (unparseable
#: file, malformed suppression comment).  Never baselined away.
META_RULE_ID = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*ignore\[(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*)\]"
    r"\s*(?P<reason>.*)$")

#: Module-level marker opting a file into the backend-purity rule
#: (R002) in addition to the known kernel modules.
BACKEND_GENERIC_MARKER = "# replint: backend-generic"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str      #: rule id, e.g. ``"R003"``
    path: str      #: posix path of the offending file
    line: int      #: 1-based line number
    message: str   #: human-readable statement of the violation
    snippet: str = ""  #: the stripped offending source line

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "snippet": self.snippet}


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`.
    Rules are stateless: one instance serves every module, and
    ``check`` receives everything it needs via the context.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST,
                message: str) -> Finding:
        """A finding anchored at ``node`` in ``ctx``'s module."""
        line = getattr(node, "lineno", 1)
        return Finding(rule=self.id, path=ctx.display_path, line=line,
                       message=message, snippet=ctx.source_line(line))


@dataclass
class ModuleContext:
    """One parsed module plus the derived lookups rules share."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: Sequence[str]
    #: line -> set of rule ids suppressed there (reason already vetted)
    suppressions: Mapping[int, frozenset]
    _annotation_nodes: frozenset = field(default_factory=frozenset)
    _parents: dict = field(default_factory=dict)

    @property
    def posix(self) -> str:
        """Full posix path, for scope matching (stable under cwd)."""
        return self.path.as_posix()

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions.get(finding.line,
                                                     frozenset())

    # -- annotation tracking -------------------------------------------

    def in_annotation(self, node: ast.AST) -> bool:
        """Whether ``node`` sits inside a type annotation.

        Annotations are type-level references, not runtime compute, so
        e.g. ``np.ndarray`` in a signature never violates
        backend-purity and ``np.random.Generator`` in a signature never
        violates rng-discipline.
        """
        return id(node) in self._annotation_nodes

    # -- ancestry ------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_annotation_nodes(tree: ast.Module) -> frozenset:
    """ids of every AST node lying inside a type annotation."""
    collected: set[int] = set()

    def mark(node: ast.AST | None) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            collected.add(id(sub))

    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            mark(node.annotation)
        elif isinstance(node, ast.arg):
            mark(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mark(node.returns)
    return frozenset(collected)


def _collect_parents(tree: ast.Module) -> dict:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def parse_suppressions(lines: Sequence[str]
                       ) -> tuple[dict, list]:
    """Per-line suppression table from ``# replint: ignore[...]``.

    Returns ``(suppressions, problems)`` where ``problems`` is a list
    of ``(line, message)`` for malformed suppressions (missing
    reason): an inline waiver with no justification is treated as a
    finding in its own right, not honored silently.
    """
    suppressions: dict[int, frozenset] = {}
    problems: list[tuple[int, str]] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(part.strip()
                          for part in match.group("rules").split(","))
        reason = match.group("reason").strip()
        if not reason:
            problems.append(
                (number, "suppression comment has no reason; write "
                 "`# replint: ignore[R00x] <why this is exempt>`"))
            continue
        suppressions[number] = rules
    return suppressions, problems


def build_context(path: Path, display_path: str | None = None
                  ) -> tuple[ModuleContext | None, list]:
    """Parse one file into a :class:`ModuleContext`.

    Returns ``(context, meta_findings)``; an unparseable file yields
    ``(None, [R000 finding])`` so a syntax error fails the lint run
    loudly instead of silently shrinking its coverage.
    """
    display = display_path or _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as err:
        return None, [Finding(rule=META_RULE_ID, path=display, line=1,
                              message=f"cannot read file: {err}")]
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return None, [Finding(rule=META_RULE_ID, path=display,
                              line=err.lineno or 1,
                              message=f"syntax error: {err.msg}")]
    lines = source.splitlines()
    suppressions, problems = parse_suppressions(lines)
    meta = [Finding(rule=META_RULE_ID, path=display, line=line,
                    message=message,
                    snippet=lines[line - 1].strip()
                    if line <= len(lines) else "")
            for line, message in problems]
    ctx = ModuleContext(
        path=path, display_path=display, source=source, tree=tree,
        lines=lines, suppressions=suppressions,
        _annotation_nodes=_collect_annotation_nodes(tree),
        _parents=_collect_parents(tree))
    return ctx, meta


def _display_path(path: Path) -> str:
    """cwd-relative posix path when possible (stable fingerprints)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Python files under ``paths`` (dirs recursed, sorted, deduped)."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            candidates = [path]
        elif not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class LintReport:
    """Outcome of one lint run (before/after baseline filtering)."""

    findings: list       #: live findings (not suppressed, not baselined)
    baselined: list      #: findings matched by the baseline file
    suppressed_count: int
    files_scanned: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed_count,
            "baselined": [f.as_dict() for f in self.baselined],
            "findings": [f.as_dict() for f in self.findings],
        }


def run_lint(paths: Iterable[str | Path],
             rules: Sequence[Rule] | None = None,
             baseline: "Baseline | None" = None) -> LintReport:
    """Run ``rules`` over every Python file under ``paths``.

    ``rules`` defaults to the full registry
    (:data:`repro.lint.rules.ALL_RULES`); ``baseline`` filters known
    legacy findings out of :attr:`LintReport.findings` into
    :attr:`LintReport.baselined`.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    live: list[Finding] = []
    baselined: list[Finding] = []
    suppressed = 0
    files = 0
    for path in iter_python_files(paths):
        files += 1
        ctx, meta = build_context(path)
        live.extend(meta)
        if ctx is None:
            continue
        for rule in rules:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding):
                    suppressed += 1
                elif (baseline is not None
                      and finding.rule != META_RULE_ID
                      and baseline.matches(finding)):
                    baselined.append(finding)
                else:
                    live.append(finding)
    live.sort(key=lambda f: (f.path, f.line, f.rule))
    baselined.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(findings=live, baselined=baselined,
                      suppressed_count=suppressed, files_scanned=files)
