"""Delay-tolerant backlog queue with a FIFO delay ledger (paper eq. 2).

The scalar backlog evolves exactly as the paper's eq. (2):

    Q(τ+1) = max{Q(τ) − sdt(τ), 0} + ddt(τ)

— service ``sdt(τ)`` drains the *start-of-slot* backlog, and the slot's
arrivals ``ddt(τ)`` join afterwards (so energy arriving in slot ``τ``
can be served no earlier than slot ``τ+1``, a delay of at least one
slot).

On top of the scalar, :class:`BacklogQueue` keeps FIFO *parcels* — one
per arrival slot — so that each served MWh carries its true waiting
time.  The paper evaluates "average delay" (Figs. 6b, 6d) and proves a
worst-case bound ``λmax`` (Lemma 2 / Theorem 2-(4)); both are computed
from this ledger, and the parcel total is asserted to track the scalar
``Q`` to numerical precision at every step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from repro.exceptions import InfeasibleActionError

#: Absolute slack for float comparisons between ledger and scalar.
_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ServedParcel:
    """A served chunk of delay-tolerant energy and how long it waited."""

    energy: float
    delay_slots: int


@dataclass
class DelayStats:
    """Energy-weighted delay statistics accumulated over a horizon."""

    served_energy: float = 0.0
    weighted_delay: float = 0.0
    max_delay: int = 0
    histogram: dict[int, float] = field(default_factory=dict)

    def add(self, parcel: ServedParcel) -> None:
        """Fold one served parcel into the statistics."""
        self.served_energy += parcel.energy
        self.weighted_delay += parcel.energy * parcel.delay_slots
        if parcel.delay_slots > self.max_delay:
            self.max_delay = parcel.delay_slots
        bucket = self.histogram.get(parcel.delay_slots, 0.0)
        self.histogram[parcel.delay_slots] = bucket + parcel.energy

    @property
    def average_delay(self) -> float:
        """Energy-weighted mean delay in slots (0 if nothing served)."""
        if self.served_energy == 0:
            return 0.0
        return self.weighted_delay / self.served_energy


class BacklogQueue:
    """The delay-tolerant demand queue ``Q`` with FIFO delay tracking."""

    def __init__(self) -> None:
        self._backlog = 0.0
        self._parcels: deque[list[float]] = deque()  # [arrival_slot, energy]
        self._arrived = 0.0
        self.stats = DelayStats()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def backlog(self) -> float:
        """Current scalar backlog ``Q(τ)`` in MWh."""
        return self._backlog

    @property
    def arrived_total(self) -> float:
        """Total delay-tolerant energy that ever arrived."""
        return self._arrived

    @property
    def served_total(self) -> float:
        """Total delay-tolerant energy served so far."""
        return self.stats.served_energy

    @property
    def has_backlog(self) -> bool:
        """The indicator ``1{Q(τ) > 0}`` used by the Y-queue (eq. 12)."""
        return self._backlog > _TOLERANCE

    @property
    def oldest_age(self) -> int | None:
        """Age in slots of the oldest queued parcel, given ``now``.

        Returns ``None`` when empty.  Note: callers must subtract the
        stored arrival slot from *their* notion of now; see
        :meth:`oldest_arrival_slot`.
        """
        if not self._parcels:
            return None
        return int(self._parcels[0][0])

    def oldest_arrival_slot(self) -> int | None:
        """Arrival slot of the oldest queued parcel (None if empty)."""
        if not self._parcels:
            return None
        return int(self._parcels[0][0])

    # ------------------------------------------------------------------
    # Dynamics (paper eq. 2 order: serve, then admit arrivals)
    # ------------------------------------------------------------------

    def serve(self, amount: float, current_slot: int) -> list[ServedParcel]:
        """Drain ``sdt(τ)`` from the backlog, oldest energy first.

        ``amount`` beyond the current backlog is ignored (eq. 2's
        ``max{·, 0}``).  Returns the served parcels with their delays
        (``current_slot − arrival_slot``).
        """
        if amount < 0:
            raise InfeasibleActionError(f"service must be >= 0, got {amount}")
        to_serve = min(amount, self._backlog)
        served: list[ServedParcel] = []
        remaining = to_serve
        while remaining > _TOLERANCE and self._parcels:
            arrival_slot, energy = self._parcels[0]
            take = min(energy, remaining)
            delay = max(0, current_slot - int(arrival_slot))
            parcel = ServedParcel(energy=take, delay_slots=delay)
            served.append(parcel)
            self.stats.add(parcel)
            remaining -= take
            if take >= energy - _TOLERANCE:
                self._parcels.popleft()
            else:
                self._parcels[0][1] = energy - take
        self._backlog = max(0.0, self._backlog - to_serve)
        self._assert_consistent()
        return served

    def admit(self, amount: float, arrival_slot: int) -> None:
        """Admit the slot's arrivals ``ddt(τ)`` at the queue tail."""
        if amount < 0:
            raise InfeasibleActionError(f"arrival must be >= 0, got {amount}")
        if amount > _TOLERANCE:
            self._parcels.append([arrival_slot, amount])
            self._arrived += amount
        self._backlog += amount
        self._assert_consistent()

    def step(self, service: float, arrivals: float,
             current_slot: int) -> list[ServedParcel]:
        """One full slot of eq. (2): serve first, then admit arrivals."""
        served = self.serve(service, current_slot)
        self.admit(arrivals, current_slot)
        return served

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _assert_consistent(self) -> None:
        ledger = sum(energy for _, energy in self._parcels)
        if abs(ledger - self._backlog) > 1e-6 * max(1.0, self._backlog):
            raise AssertionError(
                f"backlog ledger desync: parcels sum to {ledger}, "
                f"scalar is {self._backlog}")

    def reset(self) -> None:
        """Empty the queue and statistics for a fresh horizon."""
        self._backlog = 0.0
        self._parcels.clear()
        self._arrived = 0.0
        self.stats = DelayStats()

    def __repr__(self) -> str:
        return (f"BacklogQueue(backlog={self._backlog:.4f}, "
                f"parcels={len(self._parcels)})")
