"""Batch-vs-serial engine benchmark on the Fig. 10 scaling workload.

Replicates the Fig. 10 expansion sweep (4 β values × N seeds, 31-day
horizon) at growing batch sizes and times the serial scalar engine
against the vectorized batch engine on the identical run list,
verifying bit-identical results before trusting any timing.  Results
land in ``BENCH_batch.json`` at the repo root (see
benchmarks/README.md for how to read it).

Run::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full
    PYTHONPATH=src python benchmarks/bench_batch.py --quick    # small

The PR acceptance bar is a ≥5× speedup at batch size ≥32.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.fig10_scaling import build_fig10_specs  # noqa: E402
from repro.sim.batch import simulate_many  # noqa: E402
from repro.sim.recorder import SERIES_NAMES  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_batch.json"


def fig10_fleet(n_seeds: int, days: int) -> list:
    """The Fig. 10 sweep replicated across seeds: 4·n_seeds runs."""
    specs = []
    for seed in range(n_seeds):
        specs.extend(build_fig10_specs(seed=seed, days=days))
    return specs


def identical(a, b) -> bool:
    return all(np.array_equal(a.series[name], b.series[name])
               for name in SERIES_NAMES) \
        and a.delay_stats.histogram == b.delay_stats.histogram


def best_of(repeats: int, fn) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, value


def measure(n_seeds: int, days: int, repeats: int) -> dict:
    runs = fig10_fleet(n_seeds, days)
    serial_s, serial = best_of(
        repeats, lambda: simulate_many(runs, executor="serial"))
    batch_s, batch = best_of(
        repeats, lambda: simulate_many(runs, executor="batch"))
    bit_identical = all(identical(a, b) for a, b in zip(serial, batch))
    row = {
        "batch_size": len(runs),
        "horizon_slots": runs[0].system.horizon_slots,
        "serial_s": round(serial_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(serial_s / batch_s, 2),
        "bit_identical": bit_identical,
    }
    print(f"B={row['batch_size']:4d}  serial {serial_s:6.2f}s  "
          f"batch {batch_s:6.2f}s  speedup {row['speedup']:5.2f}x  "
          f"bit-identical={bit_identical}")
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes, no JSON output")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    if args.quick:
        measure(n_seeds=2, days=4, repeats=1)
        return 0

    days = 31
    rows = [measure(n_seeds, days, args.repeats)
            for n_seeds in (2, 8, 16, 32)]

    target = [row for row in rows if row["batch_size"] >= 32]
    achieved = max(row["speedup"] for row in target)
    ok = (all(row["bit_identical"] for row in rows)
          and all(row["speedup"] >= 5.0 for row in target))
    payload = {
        "workload": ("fig10 system-expansion sweep "
                     "(4 beta values x N seeds, SmartDPSS V=1)"),
        "horizon_slots": rows[0]["horizon_slots"],
        "timing": f"best of {args.repeats}",
        "target": ">=5x speedup over serial at batch size >=32",
        "target_met": ok,
        "max_speedup_at_32_plus": achieved,
        "results": rows,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT} (target met: {ok})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
