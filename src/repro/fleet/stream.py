"""Streaming trace sources: seed-deterministic chunked generation.

Every engine before this subsystem preloaded full horizons, so fleet
memory grew as ``O(B · horizon)``.  A :class:`TraceStream` instead
materializes :class:`~repro.traces.base.TraceSet` *windows* on demand:
the streaming batch engine (:mod:`repro.fleet.engine`) consumes one
chunk of columns at a time and peak memory scales with the chunk size.

Two sources are provided:

* :class:`StreamingPaperTraces` — the paper's synthetic trace family
  regenerated chunk by chunk.  Each stochastic sub-process (demand
  noise, batch arrivals, cloud regimes, solar jitter, solar noise, the
  two price processes) draws from its *own* named substream
  (:mod:`repro.rng`) and threads explicit carry state
  (:class:`~repro.traces.demand.DemandChunkState` and friends) across
  chunks, so the concatenation of sequential windows is **bit-identical
  for every chunk size** — including one window covering the whole
  horizon.  That invariance is what lets ``tests/equivalence/`` compare
  the streamed engine against the in-memory engine exactly.

  Note the draw *interleaving* differs from
  :func:`~repro.traces.library.make_paper_traces` (which shares one
  generator per component), so the ``"stream"`` family is its own
  deterministic trace universe: same statistics, different realization
  per seed.

* :class:`ArrayTraceStream` — wraps an already-materialized
  :class:`TraceSet` so in-memory recipes flow through the same cursor
  protocol (no memory savings; used for oracle controllers and the
  ``"paper"`` recipe).

Windows are served strictly in order — the simulation consumes slots
sequentially, and sequential generation is what makes carry state
cheap.  ``open()`` returns a fresh cursor, so one stream description
can be replayed any number of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import TraceError
from repro.rng import RngFactory
from repro.traces.base import TraceSet
from repro.traces.demand import (
    DemandChunkState,
    DemandModel,
    GoogleClusterDemandGenerator,
)
from repro.traces.prices import (
    NyisoLikePriceGenerator,
    PriceChunkState,
    PriceModel,
)
from repro.traces.scaling import clip_demand_peaks
from repro.traces.solar import (
    MidcLikeSolarGenerator,
    SolarChunkState,
    SolarModel,
)

#: Default window size (fine slots) used by ``materialize``.
DEFAULT_MATERIALIZE_CHUNK = 256


class TraceCursor:
    """Sequential reader over one stream (abstract).

    ``read(n)`` returns the next ``n`` slots as a :class:`TraceSet`
    window; a cursor never rewinds.
    """

    def read(self, n_slots: int) -> TraceSet:
        raise NotImplementedError

    @property
    def position(self) -> int:
        raise NotImplementedError


class TraceStream:
    """A replayable chunked trace source (abstract).

    Concrete streams know their horizon length and mint independent
    sequential cursors via :meth:`open`.
    """

    @property
    def n_slots(self) -> int:
        raise NotImplementedError

    def open(self) -> TraceCursor:
        raise NotImplementedError

    def windows(self, chunk_slots: int) -> Iterator[TraceSet]:
        """Iterate the whole horizon in windows of ``chunk_slots``."""
        if chunk_slots < 1:
            raise ValueError(f"chunk must be >= 1 slot, got {chunk_slots}")
        cursor = self.open()
        position = 0
        while position < self.n_slots:
            take = min(chunk_slots, self.n_slots - position)
            yield cursor.read(take)
            position += take

    def materialize(self,
                    chunk_slots: int = DEFAULT_MATERIALIZE_CHUNK
                    ) -> TraceSet:
        """The full horizon as one :class:`TraceSet`.

        Defined as the concatenation of sequential windows, which by
        the chunk-size invariance equals the output for *any* chunking
        — this is the in-memory reference the equivalence harness runs
        through :class:`~repro.sim.batch.BatchSimulator`.
        """
        windows = list(self.windows(chunk_slots))
        meta = dict(windows[0].meta)
        meta.pop("peak_clip_slots", None)
        return TraceSet(
            demand_ds=np.concatenate([w.demand_ds for w in windows]),
            demand_dt=np.concatenate([w.demand_dt for w in windows]),
            renewable=np.concatenate([w.renewable for w in windows]),
            price_rt=np.concatenate([w.price_rt for w in windows]),
            price_lt_hourly=np.concatenate(
                [w.price_lt_hourly for w in windows]),
            meta=meta,
        )


class _ArrayCursor(TraceCursor):
    """Cursor over a resident :class:`TraceSet`."""

    def __init__(self, traces: TraceSet):
        self._traces = traces
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def read(self, n_slots: int) -> TraceSet:
        start = self._position
        stop = start + n_slots
        if stop > self._traces.n_slots:
            raise TraceError(
                f"read past end of stream: [{start}, {stop}) of "
                f"{self._traces.n_slots} slots")
        self._position = stop
        traces = self._traces
        return TraceSet(
            demand_ds=traces.demand_ds[start:stop],
            demand_dt=traces.demand_dt[start:stop],
            renewable=traces.renewable[start:stop],
            price_rt=traces.price_rt[start:stop],
            price_lt_hourly=traces.price_lt_hourly[start:stop],
            meta=dict(traces.meta),
        )


class ArrayTraceStream(TraceStream):
    """A resident :class:`TraceSet` behind the stream protocol."""

    def __init__(self, traces: TraceSet):
        self._traces = traces

    @property
    def n_slots(self) -> int:
        return self._traces.n_slots

    def open(self) -> TraceCursor:
        return _ArrayCursor(self._traces)

    def materialize(self, chunk_slots: int = DEFAULT_MATERIALIZE_CHUNK
                    ) -> TraceSet:
        return self._traces


@dataclass
class _PaperStreamState:
    """All carry state of one :class:`StreamingPaperTraces` cursor."""

    demand: DemandChunkState = field(default_factory=DemandChunkState)
    solar: SolarChunkState = field(default_factory=SolarChunkState)
    price: PriceChunkState = field(default_factory=PriceChunkState)


class _PaperStreamCursor(TraceCursor):
    """Sequential generator-backed cursor.

    Holds one dedicated :class:`numpy.random.Generator` per stochastic
    sub-process (created once, advanced strictly per slot) plus the
    AR(1)/Markov carry state, so successive ``read`` calls continue
    every process exactly where the previous window left it.
    """

    def __init__(self, stream: "StreamingPaperTraces"):
        self._stream = stream
        factory = RngFactory(stream.seed)
        self._rng_dds = factory.stream("stream:demand_ds")
        self._rng_ddt = factory.stream("stream:demand_dt")
        self._rng_clouds = factory.stream("stream:solar:clouds")
        self._rng_jitter = factory.stream("stream:solar:jitter")
        self._rng_noise = factory.stream("stream:solar:noise")
        self._rng_prt = factory.stream("stream:price_rt")
        self._rng_plt = factory.stream("stream:price_lt")
        self._state = _PaperStreamState()
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def read(self, n_slots: int) -> TraceSet:
        stream = self._stream
        start = self._position
        if start + n_slots > stream.n_slots:
            raise TraceError(
                f"read past end of stream: [{start}, {start + n_slots}) "
                f"of {stream.n_slots} slots")
        state = self._state
        demand_gen = stream.demand_generator
        demand_ds = demand_gen.delay_sensitive_chunk(
            start, n_slots, self._rng_dds, state.demand)
        demand_dt = demand_gen.delay_tolerant_chunk(
            start, n_slots, self._rng_ddt)
        renewable = stream.solar_generator.generate_chunk(
            start, n_slots, self._rng_clouds, self._rng_jitter,
            self._rng_noise, state.solar)
        price_gen = stream.price_generator
        price_rt = price_gen.real_time_prices_chunk(
            start, n_slots, self._rng_prt, state.price)
        price_lt = price_gen.forward_curve_chunk(
            start, n_slots, self._rng_plt)
        self._position = start + n_slots

        window = TraceSet(
            demand_ds=demand_ds,
            demand_dt=demand_dt,
            renewable=renewable,
            price_rt=price_rt,
            price_lt_hourly=price_lt,
            meta={"seed": stream.seed, "source": "StreamingPaperTraces",
                  "window_start": start},
        )
        if stream.clip_p_grid is not None and stream.clip_p_grid > 0:
            window = clip_demand_peaks(window, stream.clip_p_grid)
        return window


class StreamingPaperTraces(TraceStream):
    """The paper's trace family, generated chunk by chunk.

    Parameters
    ----------
    n_slots:
        Horizon length in fine slots.
    seed:
        Root seed; every sub-process derives an independent substream
        from it (see module docstring for the seed discipline).
    demand_model / solar_model / price_model:
        Component model overrides (defaults mirror
        :func:`~repro.traces.library.make_paper_traces`).
    clip_p_grid:
        When positive, apply the paper's ``Pgrid`` peak clipping to
        every window (the clip is per-slot, hence chunk-invariant).
        ``None`` disables clipping.
    """

    def __init__(self, n_slots: int, seed: int,
                 demand_model: DemandModel | None = None,
                 solar_model: SolarModel | None = None,
                 price_model: PriceModel | None = None,
                 clip_p_grid: float | None = None):
        if n_slots < 1:
            raise ValueError(f"horizon must have >= 1 slot, got {n_slots}")
        self._n_slots = int(n_slots)
        self.seed = int(seed)
        self.demand_model = demand_model or DemandModel()
        self.solar_model = solar_model or SolarModel()
        self.price_model = price_model or PriceModel()
        self.clip_p_grid = clip_p_grid
        self.demand_generator = GoogleClusterDemandGenerator(
            self.demand_model)
        self.solar_generator = MidcLikeSolarGenerator(self.solar_model)
        self.price_generator = NyisoLikePriceGenerator(self.price_model)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def open(self) -> TraceCursor:
        return _PaperStreamCursor(self)
