"""Future-work extensions: cooling overhead and peak analysis."""

import numpy as np
import pytest

from repro.analysis.peaks import (
    demand_charge,
    grid_draw_series,
    peak_report,
)
from repro.baselines.impatient import ImpatientController
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.smartdpss import SmartDPSS
from repro.exceptions import ConfigurationError
from repro.sim.engine import run_simulation
from repro.traces.library import make_paper_traces
from repro.traces.scaling import clip_demand_peaks
from repro.workload.cooling import (
    CoolingModel,
    apply_cooling_overhead,
    sample_temperature,
)


class TestCoolingModel:
    def test_free_cooling_region(self):
        model = CoolingModel(free_cooling_below_c=10.0,
                             base_overhead=0.08)
        assert model.overhead(-5.0) == pytest.approx(0.08)
        assert model.overhead(10.0) == pytest.approx(0.08)

    def test_overhead_grows_with_temperature(self):
        model = CoolingModel()
        assert model.overhead(30.0) > model.overhead(15.0) \
            > model.overhead(5.0)

    @pytest.mark.parametrize("kwargs", [
        {"diurnal_amplitude_c": -1.0},
        {"weather_rho": 1.0},
        {"weather_sigma_c": -1.0},
        {"base_overhead": -0.1},
        {"slot_hours": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CoolingModel(**kwargs)


class TestTemperature:
    def test_deterministic(self):
        model = CoolingModel()
        a = sample_temperature(model, 100,
                               np.random.default_rng(1))
        b = sample_temperature(model, 100,
                               np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_diurnal_afternoon_peak(self):
        model = CoolingModel(weather_sigma_c=0.0)
        temps = sample_temperature(model, 24 * 10,
                                   np.random.default_rng(2))
        hours = np.arange(temps.size) % 24
        afternoon = temps[hours == 15].mean()
        night = temps[hours == 3].mean()
        assert afternoon > night

    def test_invalid_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_temperature(CoolingModel(), 0,
                               np.random.default_rng(0))


class TestApplyCooling:
    def test_inflates_ds_only(self):
        system = paper_system_config(days=4)
        traces = make_paper_traces(system, seed=70)
        cooled, temps = apply_cooling_overhead(
            traces, np.random.default_rng(3))
        assert np.all(cooled.demand_ds >= traces.demand_ds)
        assert np.array_equal(cooled.demand_dt, traces.demand_dt)
        assert temps.size == traces.n_slots

    def test_meta_records_overhead(self):
        system = paper_system_config(days=2)
        traces = make_paper_traces(system, seed=71)
        cooled, _ = apply_cooling_overhead(
            traces, np.random.default_rng(4))
        assert cooled.meta["cooling_mean_overhead"] > 0.0

    def test_cooled_system_still_runs(self):
        system = paper_system_config(days=4)
        traces = make_paper_traces(system, seed=72)
        cooled, _ = apply_cooling_overhead(
            traces, np.random.default_rng(5))
        cooled = clip_demand_peaks(cooled, system.p_grid)
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), cooled)
        assert result.availability == 1.0

    def test_hot_weather_costs_more(self):
        system = paper_system_config(days=7)
        traces = make_paper_traces(system, seed=73)
        cold = CoolingModel(mean_temp_c=0.0, weather_sigma_c=0.0)
        hot = CoolingModel(mean_temp_c=25.0, weather_sigma_c=0.0)
        costs = {}
        for label, model in (("cold", cold), ("hot", hot)):
            cooled, _ = apply_cooling_overhead(
                traces, np.random.default_rng(6), model)
            cooled = clip_demand_peaks(cooled, system.p_grid)
            result = run_simulation(
                system, SmartDPSS(paper_controller_config()), cooled)
            costs[label] = result.time_average_cost
        assert costs["hot"] > costs["cold"]


class TestPeakAnalysis:
    @pytest.fixture(scope="class")
    def results(self):
        system = paper_system_config(days=7)
        traces = make_paper_traces(system, seed=74)
        smart = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces)
        impatient = run_simulation(system, ImpatientController(),
                                   traces)
        return system, smart, impatient

    def test_draw_series_bounded_by_pgrid(self, results):
        system, smart, _ = results
        draw = grid_draw_series(smart)
        assert np.all(draw <= system.p_grid + 1e-9)

    def test_peak_report_consistent(self, results):
        _, smart, _ = results
        report = peak_report(smart)
        assert report["mean_mwh"] <= report["p95_mwh"] \
            <= report["p99_mwh"] <= report["peak_mwh"]
        assert 0.0 < report["load_factor"] <= 1.0

    def test_demand_charge_scales_with_tariff(self, results):
        _, smart, _ = results
        low = demand_charge(smart, dollars_per_mw_month=5_000.0)
        high = demand_charge(smart, dollars_per_mw_month=10_000.0)
        assert high == pytest.approx(2.0 * low)

    def test_demand_charge_prorated(self, results):
        _, smart, _ = results
        bill = demand_charge(smart)
        # 7 of 31 days → roughly 168/744 of a monthly charge.
        peak_mw = grid_draw_series(smart).max()
        assert bill == pytest.approx(
            peak_mw * 10_000.0 * 168 / 744)

    def test_negative_tariff_rejected(self, results):
        _, smart, _ = results
        with pytest.raises(ConfigurationError):
            demand_charge(smart, dollars_per_mw_month=-1.0)

    def test_paper_peak_remark(self, results):
        # Section IV-C: SmartDPSS "may incur power peaks ... limited"
        # by Pgrid.  Measured: its peak is no lower than Impatient's
        # (it deliberately loads cheap hours) but capped at Pgrid.
        system, smart, impatient = results
        assert peak_report(smart)["peak_mwh"] \
            >= peak_report(impatient)["peak_mwh"] - 0.2
        assert peak_report(smart)["peak_mwh"] <= system.p_grid + 1e-9
