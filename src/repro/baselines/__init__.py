"""Comparison policies (paper Section VI-A "Compared Algorithms").

* :class:`~repro.baselines.impatient.ImpatientController` — the paper's
  online baseline: "always schedules workloads immediately regardless
  of the changes of electricity prices and renewable production";
* :class:`~repro.baselines.offline.OfflineOptimal` — the clairvoyant
  benchmark ``φopt``: a full-horizon linear program with complete
  knowledge of demand, renewables and prices (strictly stronger than
  the paper's per-coarse-slot P2 construction, see DESIGN.md §3);
* :class:`~repro.baselines.myopic.MyopicPriceThreshold` — an extra
  single-timescale heuristic (serve when the price is below a running
  quantile) used in ablation benchmarks.
"""

from repro.baselines.impatient import ImpatientController
from repro.baselines.lookahead import LookaheadController, PaperP2Offline
from repro.baselines.myopic import MyopicPriceThreshold
from repro.baselines.offline import OfflineOptimal, OfflinePlan, solve_offline_plan

__all__ = [
    "ImpatientController",
    "OfflineOptimal",
    "OfflinePlan",
    "solve_offline_plan",
    "MyopicPriceThreshold",
    "LookaheadController",
    "PaperP2Offline",
]
