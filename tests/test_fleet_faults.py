"""Chaos suite: every fleet recovery path, driven deterministically.

The :mod:`repro.fleet.faults` harness injects failures at named sites
(engine slot loop, trace loading, LP solves, store appends, whole
workers) so the retry → bisect → quarantine lifecycle, the pool
respawn paths and the torn-write tolerance of the store are exercised
on purpose — with healthy scenarios asserted bit-identical to a
fault-free run throughout.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    ConfigurationError,
    FaultInjectionError,
    TraceCorruptionError,
)
from repro.fleet.faults import FAULT_ENV_VAR, Fault, FaultPlan
from repro.fleet.runner import FleetRunner, _tear_last_line
from repro.fleet.spec import ScenarioSpec, grid_specs
from repro.fleet.store import ResultStore
from repro.fleet.__main__ import build_demo_fleet, main

pytestmark = [pytest.mark.fleet, pytest.mark.faults]


def tiny_template() -> ScenarioSpec:
    return ScenarioSpec(
        system={"preset": "paper", "days": 1,
                "fine_slots_per_coarse": 6},
        controller={"kind": "smartdpss"},
        trace={"kind": "stream"})


def tiny_fleet() -> list[ScenarioSpec]:
    return grid_specs(tiny_template(), "controller.v",
                      [0.2, 1.0], seeds=(0, 1, 2))


@pytest.fixture(scope="module")
def fleet() -> list[ScenarioSpec]:
    return tiny_fleet()


@pytest.fixture(scope="module")
def reference(fleet) -> list[dict]:
    """Fault-free records every chaos run must reproduce bit-identically."""
    return FleetRunner(fleet, batch_size=4, fault_plan=FaultPlan()).run()


def run_chaos(fleet, plan, **kwargs):
    """A runner armed with ``plan`` and test-friendly defaults."""
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("retry_backoff_s", 0)
    runner = FleetRunner(fleet, fault_plan=plan, **kwargs)
    return runner, runner.run()


class TestFaultValidation:
    def test_unknown_site_action_series_rejected(self):
        with pytest.raises(ConfigurationError, match="site"):
            Fault(site="disk")
        with pytest.raises(ConfigurationError, match="action"):
            Fault(site="plan", action="explode")
        with pytest.raises(ConfigurationError, match="series"):
            Fault(site="traces", action="nan", series="weather")

    def test_torn_requires_store_append_site(self):
        with pytest.raises(ConfigurationError, match="torn"):
            Fault(site="plan", action="torn")
        Fault(site="store_append", action="torn")  # the valid pairing

    def test_times_and_rate_bounds(self):
        with pytest.raises(ConfigurationError, match="times"):
            Fault(site="plan", times=0)
        with pytest.raises(ConfigurationError, match="rate"):
            Fault(site="plan", rate=1.5)
        Fault(site="plan", times=None, rate=0.0)  # both edges valid

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown Fault"):
            Fault.from_dict({"site": "plan", "when": "now"})

    def test_plan_round_trips_and_coerces_dicts(self):
        plan = FaultPlan(faults=(
            Fault(site="slot_loop", scenario="s", times=None, slot=3),
            {"site": "store_append", "action": "torn"}), seed=7)
        assert all(isinstance(f, Fault) for f in plan.faults)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert len(plan) == 2

    def test_matches_scenario_by_name_or_seed(self):
        assert Fault(site="plan").matches_scenario("x", 0)
        named = Fault(site="plan", scenario="x")
        assert named.matches_scenario("x", 5)
        assert not named.matches_scenario("y", 5)
        seeded = Fault(site="plan", scenario=5)
        assert seeded.matches_scenario("anything", 5)
        assert not seeded.matches_scenario("anything", 6)

    def test_from_env_inline_json_and_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan(faults=(Fault(site="plan", times=None),), seed=3)
        monkeypatch.setenv(FAULT_ENV_VAR, plan.to_json())
        assert FaultPlan.from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_ENV_VAR, str(path))
        assert FaultPlan.from_env() == plan
        # An armed environment reaches a runner that passes no plan.
        runner = FleetRunner(tiny_fleet())
        assert runner.fault_plan == plan

    def test_rate_gating_is_deterministic_in_the_plan_seed(self):
        fault = Fault(site="plan", rate=0.5, times=None)
        keys = [(f"s{i}", i) for i in range(64)]

        def fired(seed):
            bound = FaultPlan(faults=(fault,), seed=seed).bind(keys)
            return list(bound._matches(fault, "plan", None))

        assert fired(3) == fired(3)          # reproducible
        assert 0 < len(fired(3)) < 64        # actually probabilistic
        assert fired(3) != fired(4)          # keyed by the plan seed


class TestSerialRecovery:
    def test_transient_fault_retries_then_succeeds(self, fleet, reference,
                                                   tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(Fault(site="slot_loop", times=1),))
        runner, records = run_chaos(fleet, plan, store=store)
        # Both shards fail on attempt 0, go quiet on the retry.
        assert runner.last_run_stats == {
            "executed": 6, "skipped": 0, "shards": 2, "retries": 2,
            "bisections": 0, "quarantined": 0, "pool_respawns": 0}
        assert records == reference
        assert len(store) == 6
        assert store.errors() == []

    def test_poisoned_scenario_bisects_to_quarantine(self, fleet,
                                                     reference, tmp_path):
        store = ResultStore(tmp_path / "s")
        poisoned = fleet[1].name
        plan = FaultPlan(faults=(
            Fault(site="slot_loop", scenario=poisoned, times=None,
                  slot=3, message="poisoned"),))
        runner, records = run_chaos(fleet, plan, store=store)
        # shard[0..3] retries twice, bisects; [0,1] retries twice,
        # bisects; [1] alone retries twice and is quarantined —
        # leaving 3 successful shards: [0], [2,3] and [4,5].
        assert runner.last_run_stats == {
            "executed": 5, "skipped": 0, "shards": 3, "retries": 6,
            "bisections": 2, "quarantined": 1, "pool_respawns": 0}
        assert records[1]["quarantined"] is True
        assert [records[i] for i in (0, 2, 3, 4, 5)] == \
            [reference[i] for i in (0, 2, 3, 4, 5)]
        (error,) = store.errors()
        assert error["name"] == poisoned
        assert error["spec_hash"] == fleet[1].spec_hash()
        assert error["quarantined"] is True
        assert error["error"]["type"] == "FaultInjectionError"
        assert error["error"]["site"] == "slot_loop"
        assert error["error"]["attempts"] >= 1
        assert "poisoned" in error["error"]["message"]
        assert len(store) == 5  # healthy rows only in results.jsonl

    def test_recovery_counters_reach_the_manifest(self, fleet, tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(Fault(site="slot_loop", times=1),))
        runner, _ = run_chaos(fleet, plan, store=store, telemetry=True)
        counters = runner.last_manifest.counters
        assert counters["retries"] == 2
        (stored,) = store.manifests()
        assert stored["counters"]["retries"] == 2

    def test_fail_fast_restores_all_or_nothing(self, fleet):
        plan = FaultPlan(faults=(
            Fault(site="slot_loop", scenario=fleet[1].name, times=None),))
        with pytest.raises(FaultInjectionError):
            run_chaos(fleet, plan, fail_fast=True)

    def test_nan_corruption_quarantines_without_bisection(self, fleet,
                                                          reference,
                                                          tmp_path):
        store = ResultStore(tmp_path / "s")
        poisoned = fleet[2].name
        plan = FaultPlan(faults=(
            Fault(site="traces", action="nan", scenario=poisoned,
                  slot=2, series="renewable"),))
        runner, records = run_chaos(fleet, plan, store=store)
        # The error names its scenario, so no retry/bisect round-trips.
        assert runner.last_run_stats == {
            "executed": 5, "skipped": 0, "shards": 2, "retries": 0,
            "bisections": 0, "quarantined": 1, "pool_respawns": 0}
        (error,) = store.errors()
        assert error["name"] == poisoned
        assert error["error"]["type"] == "TraceCorruptionError"
        assert "'renewable'" in error["error"]["message"]
        assert "slot 2" in error["error"]["message"]
        assert [records[i] for i in (0, 1, 3, 4, 5)] == \
            [reference[i] for i in (0, 1, 3, 4, 5)]

    def test_lp_failure_degrades_offline_columns_only(self, fleet):
        baseline = FleetRunner(fleet, batch_size=4, offline_gap=True,
                               fault_plan=FaultPlan()).run()
        degraded_name = fleet[4].name
        plan = FaultPlan(faults=(
            Fault(site="lp_solve", error="solver", scenario=degraded_name,
                  times=None, message="iteration limit"),))
        runner, records = run_chaos(fleet, plan, offline_gap=True)
        # No shard failed: degradation happens inside the solver stage.
        assert runner.last_run_stats["retries"] == 0
        assert runner.last_run_stats["quarantined"] == 0
        for index, (record, ref) in enumerate(zip(records, baseline)):
            if index == 4:
                assert "offline_cost" not in record["metrics"]
                assert "offline_gap" not in record["metrics"]
                trimmed = {k: v for k, v in ref["metrics"].items()
                           if k not in ("offline_cost", "offline_gap")}
                assert record["metrics"] == trimmed
            else:
                assert record == ref  # gap columns intact elsewhere

    def test_store_append_fault_is_retried(self, fleet, reference,
                                           tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(Fault(site="store_append", times=1),))
        runner, records = run_chaos(fleet, plan, store=store)
        # The fault fires before the append, so the retry re-runs the
        # shard without leaving duplicate rows behind.
        assert runner.last_run_stats["retries"] == 2
        assert runner.last_run_stats["quarantined"] == 0
        assert records == reference
        assert len(store) == 6

    def test_torn_append_recovers_on_resume(self, fleet, reference,
                                            tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(
            Fault(site="store_append", action="torn", times=1),))
        runner, records = run_chaos(fleet, plan, store=store)
        # Both shard appends ([0..3] and [4,5]) lose their final line.
        assert records == reference  # in-memory results are unharmed
        assert len(store) == 4
        executed: list[int] = []
        resumed = FleetRunner(
            fleet, batch_size=4, store=store, fault_plan=FaultPlan(),
        ).run(progress=lambda o, f, t: executed.extend(o.indices))
        assert sorted(executed) == [3, 5]  # exactly the torn rows
        assert [r["metrics"] for r in resumed] == \
            [r["metrics"] for r in reference]
        assert set(store.latest_by_hash()) == \
            {spec.spec_hash() for spec in fleet}


class TestObserveSite:
    """The ``observe`` fault site: corruption of what controllers see."""

    def test_observed_nan_quarantines_naming_view_and_series(
            self, fleet, reference, tmp_path):
        store = ResultStore(tmp_path / "s")
        poisoned = fleet[2].name
        plan = FaultPlan(faults=(
            Fault(site="observe", action="nan", scenario=poisoned,
                  slot=3, series="price_rt"),))
        runner, records = run_chaos(fleet, plan, store=store)
        # The typed error names its scenario: direct quarantine, no
        # retry/bisect round-trips.
        assert runner.last_run_stats == {
            "executed": 5, "skipped": 0, "shards": 2, "retries": 0,
            "bisections": 0, "quarantined": 1, "pool_respawns": 0}
        (error,) = store.errors()
        assert error["name"] == poisoned
        assert error["error"]["type"] == "ObservationCorruptionError"
        assert "observed" in error["error"]["message"]
        assert "'price_rt'" in error["error"]["message"]
        assert "slot 3" in error["error"]["message"]
        # Only the observed view was poisoned — physics runs on truth,
        # so every healthy scenario is bit-identical to fault-free.
        assert [records[i] for i in (0, 1, 3, 4, 5)] == \
            [reference[i] for i in (0, 1, 3, 4, 5)]

    def test_observe_site_raise_retries_then_succeeds(self, fleet,
                                                      reference):
        plan = FaultPlan(faults=(Fault(site="observe", times=1),))
        runner, records = run_chaos(fleet, plan)
        # Both shards fail once at the observation stage, then recover.
        assert runner.last_run_stats["retries"] == 2
        assert runner.last_run_stats["quarantined"] == 0
        assert records == reference


class TestPoolRecovery:
    def test_worker_kill_respawns_pool(self, fleet, reference, tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(
            Fault(site="plan", action="kill", scenario=fleet[4].name,
                  times=1),))
        runner, records = run_chaos(fleet, plan, store=store,
                                    max_workers=2)
        stats = runner.last_run_stats
        assert stats["pool_respawns"] >= 1
        assert stats["quarantined"] == 0
        assert stats["executed"] == 6
        assert records == reference
        assert len(store) == 6

    def test_shard_timeout_terminates_and_retries(self, fleet, reference,
                                                  tmp_path):
        store = ResultStore(tmp_path / "s")
        plan = FaultPlan(faults=(
            Fault(site="plan", action="hang", seconds=30.0,
                  scenario=fleet[0].name, times=1),))
        runner, records = run_chaos(fleet, plan, store=store,
                                    max_workers=2, shard_timeout=1.0)
        stats = runner.last_run_stats
        assert stats["retries"] >= 1
        assert stats["pool_respawns"] >= 1
        assert stats["quarantined"] == 0
        assert records == reference
        assert len(store) == 6


class TestResumeQuarantine:
    def test_quarantine_served_until_retry_requested(self, fleet,
                                                     reference, tmp_path):
        store = ResultStore(tmp_path / "s")
        poisoned = fleet[1].name
        plan = FaultPlan(faults=(
            Fault(site="slot_loop", scenario=poisoned, times=None,
                  slot=3),))
        run_chaos(fleet, plan, store=store)

        # Resume treats the quarantined hash as done (re-running would
        # re-fail) and serves the typed record in its slot.
        executed: list[int] = []
        runner = FleetRunner(fleet, batch_size=4, store=store,
                             fault_plan=FaultPlan())
        records = runner.run(
            progress=lambda o, f, t: executed.extend(o.indices))
        assert executed == []
        assert runner.last_run_stats["skipped"] == 6
        assert records[1]["quarantined"] is True

        # retry_quarantined re-offers exactly that scenario; without
        # the fault plan it now succeeds.
        runner = FleetRunner(fleet, batch_size=4, store=store,
                             fault_plan=FaultPlan(),
                             retry_quarantined=True)
        records = runner.run(
            progress=lambda o, f, t: executed.extend(o.indices))
        assert executed == [1]
        assert records[1]["metrics"] == reference[1]["metrics"]

        # The success record supersedes the quarantine from now on.
        runner = FleetRunner(fleet, batch_size=4, store=store,
                             fault_plan=FaultPlan())
        records = runner.run()
        assert runner.last_run_stats["executed"] == 0
        assert "quarantined" not in records[1]
        assert records[1]["metrics"] == reference[1]["metrics"]


class TestTornWriteRecovery:
    """A writer killed mid-append must not poison readers or resume."""

    def test_results_reader_skips_torn_line_and_resume_refills(
            self, fleet, reference, tmp_path):
        store = ResultStore(tmp_path / "s")
        FleetRunner(fleet, batch_size=4, store=store,
                    fault_plan=FaultPlan()).run()
        _tear_last_line(store.path)
        assert len(store) == 5  # the partial line is skipped, not fatal
        assert len(store.latest_by_hash()) == 5
        executed: list[int] = []
        resumed = FleetRunner(
            fleet, batch_size=4, store=store, fault_plan=FaultPlan(),
        ).run(progress=lambda o, f, t: executed.extend(o.indices))
        assert executed == [5]  # exactly the scenario the tear lost
        assert [r["metrics"] for r in resumed] == \
            [r["metrics"] for r in reference]
        # The repaired append after a torn tail stays line-delimited.
        assert len(store) == 6

    def test_manifest_reader_skips_torn_line(self, fleet, tmp_path,
                                             capsys):
        store = ResultStore(tmp_path / "s")
        FleetRunner(fleet, batch_size=4, store=store, telemetry=True,
                    fault_plan=FaultPlan()).run()
        assert len(store.manifests()) == 1
        _tear_last_line(store.manifest_path)
        assert store.manifests() == []
        # The next instrumented run appends a fresh, readable manifest.
        FleetRunner(fleet, batch_size=4, store=store, resume=False,
                    telemetry=True, fault_plan=FaultPlan()).run()
        assert len(store.manifests()) == 1
        assert main(["stats", str(store.root)]) == 0
        assert "scenarios/s" in capsys.readouterr().out


class TestCli:
    def test_env_plan_quarantine_and_stats_view(self, tmp_path,
                                                monkeypatch, capsys):
        fleet = build_demo_fleet("v-sweep", 6, days=1, t_slots=6,
                                 sample_seed=0)
        poisoned = fleet[2].name
        plan = FaultPlan(faults=(
            Fault(site="slot_loop", scenario=poisoned, times=None,
                  slot=3),))
        monkeypatch.setenv(FAULT_ENV_VAR, plan.to_json())
        out = tmp_path / "store"
        argv = ["run", "--demo", "v-sweep", "--scenarios", "6",
                "--days", "1", "--t-slots", "6", "--out", str(out),
                "--batch-size", "4", "--max-retries", "0"]
        assert main(argv) == 0  # the sweep survives its poisoned member
        store = ResultStore(out)
        assert len(store) == 5
        (error,) = store.errors()
        assert error["name"] == poisoned

        assert main(["stats", str(out)]) == 0
        shown = capsys.readouterr().out
        assert "quarantined scenarios: 1 active" in shown
        assert poisoned in shown
        assert "--retry-quarantined" in shown

        # Disarmed rerun with --retry-quarantined heals the store.
        monkeypatch.delenv(FAULT_ENV_VAR)
        assert main(argv + ["--retry-quarantined"]) == 0
        assert main(["stats", str(out)]) == 0
        assert "quarantined scenarios: 0 active" in \
            capsys.readouterr().out

    def test_fault_flags_parse(self, tmp_path):
        out = tmp_path / "store"
        assert main(["run", "--demo", "v-sweep", "--scenarios", "2",
                     "--days", "1", "--t-slots", "6", "--out", str(out),
                     "--max-retries", "1", "--shard-timeout", "300",
                     "--fail-fast"]) == 0
        assert len(ResultStore(out)) == 2


@pytest.mark.slow
def test_thousand_scenario_chaos_sweep(tmp_path):
    """The acceptance sweep: a worker kill plus a permanently poisoned
    scenario inside a 10³-scenario run — the run completes, the
    poisoned scenario lands in ``errors.jsonl`` typed, and every other
    scenario is bit-identical to a fault-free run, including across a
    resume."""
    specs = build_demo_fleet("v-sweep", 1000, days=1, t_slots=6,
                             sample_seed=0)
    reference = FleetRunner(specs, batch_size=128,
                            fault_plan=FaultPlan()).run()

    poisoned_index, killed_index = 137, 602
    plan = FaultPlan(faults=(
        Fault(site="slot_loop", scenario=specs[poisoned_index].name,
              times=None, slot=3, message="poisoned scenario"),
        Fault(site="plan", action="kill",
              scenario=specs[killed_index].name, times=1),))
    store = ResultStore(tmp_path / "chaos")
    runner = FleetRunner(specs, batch_size=128, max_workers=2,
                         store=store, fault_plan=plan, max_retries=1,
                         retry_backoff_s=0)
    records = runner.run()

    stats = runner.last_run_stats
    assert stats["executed"] == 999
    assert stats["quarantined"] == 1
    assert stats["pool_respawns"] >= 1
    (error,) = store.errors()
    assert error["name"] == specs[poisoned_index].name
    assert error["error"]["type"] == "FaultInjectionError"
    assert error["error"]["site"] == "slot_loop"
    assert records[poisoned_index]["quarantined"] is True
    for index, (record, ref) in enumerate(zip(records, reference)):
        if index != poisoned_index:
            assert record == ref

    # Resume executes nothing: 999 results + 1 quarantine cover the
    # fleet; the quarantine record is served in place.
    executed: list[int] = []
    resumed = FleetRunner(
        specs, batch_size=128, store=store, fault_plan=FaultPlan(),
    ).run(progress=lambda o, f, t: executed.extend(o.indices))
    assert executed == []
    assert resumed[poisoned_index]["quarantined"] is True
