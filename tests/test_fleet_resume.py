"""Fleet resumption: spec-hash keyed skipping of stored scenarios."""

from __future__ import annotations

import json

import pytest

from repro.fleet.__main__ import build_demo_fleet
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import ScenarioSpec, spec_content_hash
from repro.fleet.store import ResultStore

pytestmark = pytest.mark.fleet


def _fleet(n: int):
    return build_demo_fleet("v-sweep", n, days=1, t_slots=6,
                            sample_seed=0)


def test_spec_hash_is_canonical_and_discriminating():
    spec = ScenarioSpec(seed=7, controller={"kind": "smartdpss",
                                            "v": 1.5})
    reordered = ScenarioSpec.from_dict(
        json.loads(json.dumps(spec.to_dict())))
    assert spec.spec_hash() == reordered.spec_hash()
    assert spec_content_hash(spec.to_dict()) == spec.spec_hash()
    # Any content change — including only the seed — changes the hash.
    other_seed = ScenarioSpec.from_dict({**spec.to_dict(), "seed": 8})
    other_v = ScenarioSpec(seed=7, controller={"kind": "smartdpss",
                                               "v": 1.51})
    assert len({spec.spec_hash(), other_seed.spec_hash(),
                other_v.spec_hash()}) == 3


def test_records_carry_spec_hash(tmp_path):
    specs = _fleet(4)
    store = ResultStore(tmp_path / "store")
    records = FleetRunner(specs, batch_size=4, store=store).run()
    for spec, record in zip(specs, records):
        assert record["spec_hash"] == spec.spec_hash()
    assert store.spec_hashes() == {spec.spec_hash() for spec in specs}


def test_resume_skips_stored_scenarios(tmp_path):
    specs = _fleet(12)
    store = ResultStore(tmp_path / "store")
    executed = []

    def progress(outcome, finished, total):
        executed.append((outcome.indices, total))

    first = FleetRunner(specs[:8], batch_size=4, store=store).run(
        progress=progress)
    assert len(executed) == 2
    executed.clear()

    # A superset sweep re-executes only the 4 new scenarios...
    second = FleetRunner(specs, batch_size=4, store=store).run(
        progress=progress)
    assert len(executed) == 1
    assert sorted(executed[0][0]) == [8, 9, 10, 11]
    # ...while stored scenarios come back in place, identically.
    assert [r["metrics"] for r in second[:8]] == \
        [r["metrics"] for r in first]
    assert len(store) == 12
    executed.clear()

    # A full re-run executes nothing and appends nothing.
    third = FleetRunner(specs, batch_size=4, store=store).run(
        progress=progress)
    assert executed == []
    assert len(store) == 12
    assert [r["spec_hash"] for r in third] == \
        [r["spec_hash"] for r in second]


def test_resume_false_restores_append_behavior(tmp_path):
    specs = _fleet(4)
    store = ResultStore(tmp_path / "store")
    FleetRunner(specs, batch_size=4, store=store).run()
    FleetRunner(specs, batch_size=4, store=store, resume=False).run()
    assert len(store) == 8  # duplicates accumulated deliberately


def test_resume_without_store_runs_everything():
    specs = _fleet(4)
    executed = []
    FleetRunner(specs, batch_size=4).run(
        progress=lambda o, f, t: executed.append(f))
    assert executed  # no store => nothing to resume from


def test_legacy_records_without_hash_still_resume(tmp_path):
    """Stores written before the resumption layer resume via their
    embedded spec dicts."""
    specs = _fleet(4)
    store = ResultStore(tmp_path / "store")
    records = FleetRunner(specs, batch_size=4, store=store).run()

    legacy = ResultStore(tmp_path / "legacy")
    legacy.append(
        [{k: v for k, v in record.items() if k != "spec_hash"}
         for record in records])
    executed = []
    resumed = FleetRunner(specs, batch_size=4, store=legacy).run(
        progress=lambda o, f, t: executed.append(f))
    assert executed == []
    assert [r["metrics"] for r in resumed] == \
        [r["metrics"] for r in records]
