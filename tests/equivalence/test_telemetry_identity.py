"""Telemetry on/off bit-identity through the fleet runner.

The telemetry contract (see :mod:`repro.telemetry.core`) is that
instrumentation only ever *reads* the monotonic clock — it never
touches numeric state — so a run's records are the same bit for bit
whether telemetry is on or off.  These tests pin that contract through
every execution path the runner offers: the streamed engine
in-process, the in-memory batch engine, a process pool, and the
offline-gap LP path (which threads the collector all the way into the
compiled LP solves).
"""

from __future__ import annotations

import json

import pytest

from repro.fleet.runner import FleetRunner
from repro.fleet.spec import ScenarioSpec, grid_specs
from repro.fleet.store import ResultStore

pytestmark = [pytest.mark.equivalence, pytest.mark.telemetry]


def stream_fleet() -> list[ScenarioSpec]:
    template = ScenarioSpec(
        system={"preset": "paper", "days": 1,
                "fine_slots_per_coarse": 6},
        controller={"kind": "smartdpss"},
        trace={"kind": "stream"})
    return grid_specs(template, "controller.v", [0.2, 1.0],
                      seeds=(0, 1, 2))


def batch_fleet() -> list[ScenarioSpec]:
    # trace kind "paper" is not streamable, so these route to the
    # in-memory batch engine.
    template = ScenarioSpec(
        system={"preset": "paper", "days": 1,
                "fine_slots_per_coarse": 6},
        controller={"kind": "impatient"},
        trace={"kind": "paper"})
    return grid_specs(template, "controller.plan_for_total_demand",
                      [True, False], seeds=(0, 1))


def canonical(records: list[dict]) -> str:
    return json.dumps(records, sort_keys=True)


def run_records(specs, *, telemetry, **kwargs) -> list[dict]:
    return FleetRunner(specs, batch_size=4, telemetry=telemetry,
                       **kwargs).run()


class TestBitIdentity:
    def test_streamed_engine(self):
        specs = stream_fleet()
        off = run_records(specs, telemetry=False)
        on = run_records(specs, telemetry=True)
        assert canonical(on) == canonical(off)

    def test_batch_engine(self):
        specs = batch_fleet()
        off = run_records(specs, telemetry=False)
        on = run_records(specs, telemetry=True)
        assert canonical(on) == canonical(off)
        assert all(r["engine"] == "batch" for r in on)

    @pytest.mark.slow
    def test_process_pool(self):
        specs = stream_fleet()
        off = run_records(specs, telemetry=False, max_workers=2)
        on = run_records(specs, telemetry=True, max_workers=2)
        assert canonical(on) == canonical(off)

    def test_offline_gap_path(self):
        specs = stream_fleet()[:2]
        off = run_records(specs, telemetry=False, offline_gap=True)
        on = run_records(specs, telemetry=True, offline_gap=True)
        assert canonical(on) == canonical(off)
        assert "offline_gap" in on[0]["metrics"]


class TestManifestPlumbing:
    def test_manifest_recorded_and_stored(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        runner = FleetRunner(stream_fleet(), batch_size=4,
                             store=store, telemetry=True)
        runner.run()
        manifest = runner.last_manifest
        assert manifest is not None
        assert manifest.fleet["scenarios"] == 6
        assert manifest.fleet["executed"] == 6
        assert manifest.counters["scenarios"] == 6
        assert manifest.counters["shards"] == 2
        # The stage breakdown covers the pipeline: chunk loads, the
        # slot loop and its nested controller/solver spans, appends.
        for stage in ("slot_loop", "real_time", "p5", "plan", "p4",
                      "physics", "traces", "store_append", "shard"):
            assert stage in manifest.stages, stage
        stored = store.manifests()
        assert len(stored) == 1
        assert stored[0] == manifest.as_dict()

    def test_uninstrumented_run_stores_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        runner = FleetRunner(stream_fleet()[:2], store=store)
        runner.run()
        assert runner.last_manifest is None
        assert store.manifests() == []

    def test_shard_snapshots_merge_across_process_pool(self):
        runner = FleetRunner(stream_fleet(), batch_size=2,
                             max_workers=2, telemetry=True)
        runner.run()
        manifest = runner.last_manifest
        assert manifest.counters["shards"] == 3
        assert manifest.counters["scenarios"] == 6
        assert manifest.config["workers"] == 2
        # Worker wall-time sums; each shard ran 24 fine slots.
        assert manifest.counters["slots"] == 3 * 24

    def test_resumed_specs_are_excluded_from_executed(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        specs = stream_fleet()
        FleetRunner(specs[:4], store=store).run()
        runner = FleetRunner(specs, store=store, telemetry=True)
        records = runner.run()
        assert len(records) == 6
        manifest = runner.last_manifest
        assert manifest.fleet["resumed"] == 4
        assert manifest.fleet["executed"] == 2
        assert manifest.counters["scenarios"] == 2
