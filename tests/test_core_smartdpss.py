"""SmartDPSS controller unit behaviour (Algorithm 1 wiring)."""

import pytest

from repro.config.control import SmartDPSSConfig
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.interfaces import CoarseObservation, FineObservation
from repro.core.smartdpss import SmartDPSS
from repro.exceptions import ConfigurationError


def coarse_obs(**overrides) -> CoarseObservation:
    defaults = dict(
        coarse_index=0, fine_slot=0, price_lt=40.0, demand_ds=1.0,
        demand_dt=0.5, renewable=0.2, battery_level=0.5, backlog=0.0,
        cycle_budget_left=None,
        profile_demand_ds=tuple(1.0 for _ in range(24)),
        profile_demand_dt=tuple(0.5 for _ in range(24)),
        profile_renewable=tuple(0.2 for _ in range(24)),
        profile_price_rt=tuple(50.0 for _ in range(24)),
    )
    defaults.update(overrides)
    return CoarseObservation(**defaults)


def fine_obs(**overrides) -> FineObservation:
    defaults = dict(
        fine_slot=0, coarse_index=0, price_rt=50.0, demand_ds=1.0,
        demand_dt=0.5, renewable=0.2, battery_level=0.5, backlog=0.3,
        long_term_rate=1.0, grid_headroom=1.0, supply_headroom=3.0,
        cycle_budget_left=None,
    )
    defaults.update(overrides)
    return FineObservation(**defaults)


@pytest.fixture
def controller():
    ctrl = SmartDPSS(paper_controller_config())
    ctrl.begin_horizon(paper_system_config())
    return ctrl


class TestLifecycle:
    def test_requires_begin_horizon(self):
        ctrl = SmartDPSS()
        with pytest.raises(AssertionError):
            ctrl.plan_long_term(coarse_obs())

    def test_begin_horizon_resets_state(self, controller):
        controller.plan_long_term(coarse_obs())
        controller.end_slot_state = None
        controller.begin_horizon(paper_system_config())
        assert controller.delay_queue.value == 0.0
        assert controller.frozen_weights == (0.0, 0.0, 0.0)

    def test_name_mentions_v_and_mode(self):
        ctrl = SmartDPSS(SmartDPSSConfig(v=2.5))
        assert "2.5" in ctrl.name
        assert "derived" in ctrl.name


class TestPlanning:
    def test_plan_within_grid_limits(self, controller):
        gbef = controller.plan_long_term(coarse_obs())
        system = paper_system_config()
        assert 0.0 <= gbef <= system.p_grid * 24

    def test_plan_freezes_weights(self, controller):
        controller.plan_long_term(coarse_obs(backlog=3.0))
        q_hat, y_hat, x_hat = controller.frozen_weights
        assert q_hat == 3.0
        assert y_hat == 0.0
        assert x_hat == controller.battery_queue.value

    def test_rtm_only_never_buys_ahead(self):
        ctrl = SmartDPSS(
            paper_controller_config(use_long_term_market=False))
        ctrl.begin_horizon(paper_system_config())
        assert ctrl.plan_long_term(coarse_obs()) == 0.0

    def test_exhausted_cycle_budget_ignores_battery(self):
        ctrl = SmartDPSS(paper_controller_config())
        ctrl.begin_horizon(paper_system_config())
        # With budget left, plans may lean on the battery; with zero
        # budget the feasibility floor must not.
        ctrl.plan_long_term(coarse_obs(cycle_budget_left=0))
        decision = ctrl.real_time(fine_obs(cycle_budget_left=0,
                                           price_rt=20.0))
        # No battery available: decision can only buy or serve.
        assert decision.grt >= 0.0


class TestRealTime:
    def test_decision_within_bounds(self, controller):
        controller.plan_long_term(coarse_obs())
        decision = controller.real_time(fine_obs())
        assert decision.grt >= 0.0
        assert 0.0 <= decision.gamma <= 1.0

    def test_grt_respects_headroom(self, controller):
        controller.plan_long_term(coarse_obs())
        decision = controller.real_time(
            fine_obs(grid_headroom=0.25, demand_ds=2.0,
                     long_term_rate=0.0, renewable=0.0))
        assert decision.grt <= 0.25 + 1e-12

    def test_use_battery_false_plans_without_battery(self):
        ctrl = SmartDPSS(paper_controller_config(use_battery=False))
        ctrl.begin_horizon(paper_system_config())
        ctrl.plan_long_term(coarse_obs())
        decision = ctrl.real_time(fine_obs(price_rt=18.0,
                                           backlog=0.0,
                                           demand_ds=0.2))
        # Nothing to charge for: cheap price should not trigger extra
        # purchases when the controller ignores the battery.
        assert decision.grt == pytest.approx(0.0, abs=1e-9)


class TestFeedback:
    def test_y_updates_from_realized_service(self, controller):
        from repro.core.interfaces import SlotFeedback
        controller.plan_long_term(coarse_obs())
        controller.end_slot(SlotFeedback(
            fine_slot=0, served_dt=0.0, served_ds=1.0,
            unserved_ds=0.0, charge=0.0, discharge=0.0, waste=0.0,
            battery_level=0.5, backlog=0.4, had_backlog=True))
        assert controller.delay_queue.value == pytest.approx(0.5)

    def test_y_stays_zero_without_backlog(self, controller):
        from repro.core.interfaces import SlotFeedback
        controller.end_slot(SlotFeedback(
            fine_slot=0, served_dt=0.0, served_ds=1.0,
            unserved_ds=0.0, charge=0.0, discharge=0.0, waste=0.0,
            battery_level=0.5, backlog=0.0, had_backlog=False))
        assert controller.delay_queue.value == 0.0


class TestShiftModes:
    def test_paper_shift_mode_runs(self):
        ctrl = SmartDPSS(
            paper_controller_config().replace(
                battery_shift_mode="paper"))
        ctrl.begin_horizon(paper_system_config())
        gbef = ctrl.plan_long_term(coarse_obs())
        assert gbef >= 0.0

    def test_operational_shift_tracks_prices(self):
        ctrl = SmartDPSS(paper_controller_config())
        ctrl.begin_horizon(paper_system_config())
        ctrl.plan_long_term(coarse_obs())
        first_shift = ctrl.battery_queue.shift
        # Feed expensive observations: the reference price rises, so
        # the next plan's shift point must rise too.
        for _ in range(10):
            ctrl.real_time(fine_obs(price_rt=150.0))
        ctrl.plan_long_term(coarse_obs(coarse_index=1, fine_slot=24))
        assert ctrl.battery_queue.shift > first_shift


class TestRunningMeanState:
    """state()/load_state() must carry the first-boundary seed."""

    def test_round_trip_preserves_seed(self):
        from repro.core.smartdpss import _RunningMean

        seeded = _RunningMean(initial=4.2)
        snapshot = seeded.state()
        restored = _RunningMean()
        restored.load_state(snapshot)
        # Before any observation the mean *is* the seed: restoring
        # sum/count without the seed would silently change it.
        assert restored.value == 4.2
        assert restored.state() == snapshot

    def test_round_trip_after_observations(self):
        from repro.core.smartdpss import _RunningMean

        mean = _RunningMean(initial=1.0)
        mean.observe(2.0)
        mean.observe(4.0)
        restored = _RunningMean()
        restored.load_state(mean.state())
        assert restored.value == mean.value
        assert restored.state() == mean.state()

    def test_rejects_negative_count(self):
        from repro.core.smartdpss import _RunningMean

        with pytest.raises(ConfigurationError):
            _RunningMean().load_state(
                {"sum": 0.0, "count": -1, "initial": None})
