"""15-minute fine slots (paper Section II: slots are "15 or 60 min").

The whole library is unit-consistent in MWh-per-slot, so switching to
quarter-hour slots only changes the configuration: 96 fine slots per
day-ahead coarse slot, quarter-scale per-slot caps, and trace models
told the slot length.  This test runs the full pipeline at that
resolution and checks the invariants and orderings survive.
"""

import numpy as np
import pytest

from repro.baselines.impatient import ImpatientController
from repro.config.presets import paper_controller_config
from repro.config.system import SystemConfig
from repro.core.smartdpss import SmartDPSS
from repro.sim.engine import Simulator
from repro.traces.base import TraceSet
from repro.traces.demand import DemandModel, GoogleClusterDemandGenerator
from repro.traces.prices import NyisoLikePriceGenerator, PriceModel
from repro.traces.scaling import clip_demand_peaks
from repro.traces.solar import MidcLikeSolarGenerator, SolarModel
from repro.rng import RngFactory


SLOT_HOURS = 0.25
DAYS = 4


@pytest.fixture(scope="module")
def quarter_hour_setting():
    system = SystemConfig(
        fine_slots_per_coarse=96,            # one day-ahead market day
        num_coarse_slots=DAYS,
        slot_hours=SLOT_HOURS,
        p_max=200.0,
        p_grid=2.0 * SLOT_HOURS,             # 2 MW feeder
        s_max=8.0 * SLOT_HOURS,
        b_max=0.5, b_min=0.0333,
        b_charge_max=0.5 * SLOT_HOURS,       # 0.5 MW rate caps
        b_discharge_max=0.5 * SLOT_HOURS,
        eta_c=0.8, eta_d=1.25,
        battery_op_cost=0.1,
        d_dt_max=1.0 * SLOT_HOURS,
        s_dt_max=2.0 * SLOT_HOURS,
    )
    n_slots = system.horizon_slots
    factory = RngFactory(2025)
    demand_model = DemandModel(d_dt_max=system.d_dt_max,
                               slot_hours=SLOT_HOURS,
                               batch_jobs_per_hour=4.0)
    ds, dt = GoogleClusterDemandGenerator(demand_model).generate(
        n_slots, factory.stream("demand"))
    solar = MidcLikeSolarGenerator(
        SolarModel(slot_hours=SLOT_HOURS)).generate(
        n_slots, factory.stream("solar"))
    prt, plt = NyisoLikePriceGenerator(
        PriceModel(slot_hours=SLOT_HOURS)).generate(
        n_slots, factory.stream("prices"))
    traces = clip_demand_peaks(
        TraceSet(demand_ds=ds, demand_dt=dt, renewable=solar,
                 price_rt=prt, price_lt_hourly=plt),
        system.p_grid)
    return system, traces


class TestQuarterHourResolution:
    def test_horizon_shape(self, quarter_hour_setting):
        system, traces = quarter_hour_setting
        assert system.horizon_slots == DAYS * 96
        assert system.horizon_hours == pytest.approx(DAYS * 24)
        assert traces.n_slots == system.horizon_slots

    def test_smartdpss_runs_with_full_availability(
            self, quarter_hour_setting):
        system, traces = quarter_hour_setting
        # Epsilon must scale with the per-slot energy unit.
        config = paper_controller_config(
            epsilon=0.5 * SLOT_HOURS)
        result = Simulator(system, SmartDPSS(config), traces).run()
        assert result.availability == 1.0
        lo, hi = result.battery_range
        assert lo >= system.b_min - 1e-9
        assert hi <= system.b_max + 1e-9

    def test_balance_holds_at_fine_resolution(
            self, quarter_hour_setting):
        system, traces = quarter_hour_setting
        config = paper_controller_config(epsilon=0.5 * SLOT_HOURS)
        result = Simulator(system, SmartDPSS(config), traces).run()
        s = result.series
        supply = s["gbef_rate"] + s["grt"] + s["renewable_used"]
        lhs = supply + s["discharge"] - s["charge"]
        rhs = s["served_ds"] + s["served_dt"] + s["waste"]
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_cost_ordering_survives(self, quarter_hour_setting):
        system, traces = quarter_hour_setting
        config = paper_controller_config(epsilon=0.5 * SLOT_HOURS,
                                         v=2.0)
        smart = Simulator(system, SmartDPSS(config), traces).run()
        impatient = Simulator(system, ImpatientController(),
                              traces).run()
        assert smart.time_average_cost < impatient.time_average_cost

    def test_delay_hours_conversion(self, quarter_hour_setting):
        system, traces = quarter_hour_setting
        config = paper_controller_config(epsilon=0.5 * SLOT_HOURS)
        result = Simulator(system, SmartDPSS(config), traces).run()
        assert result.average_delay_hours() == pytest.approx(
            result.average_delay_slots * SLOT_HOURS)
