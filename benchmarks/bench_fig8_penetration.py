"""Bench Fig. 8 — renewable penetration and demand variation.

Paper claims: operation cost decreases significantly with renewable
penetration (renewables are harvested cost-free) and increases slightly
with demand variation (bigger approximation errors), the battery and
two-timescale markets absorbing most of the fluctuation.
"""

from conftest import emit, run_once

from repro.experiments.fig8_penetration import render, run_fig8


def test_fig8_penetration(benchmark):
    result = run_once(benchmark, run_fig8)
    emit("fig8", render(result))

    pen = result.penetration_rows
    # Cost decreases substantially from 0% to 100% penetration.
    assert result.penetration_cost_decreasing
    assert pen[-1].time_avg_cost < pen[0].time_avg_cost * 0.85
    # And monotonically along the sweep (2% slack per step).
    costs = [r.time_avg_cost for r in pen]
    assert all(costs[i + 1] <= costs[i] * 1.02
               for i in range(len(costs) - 1))
    # Variation raises cost, but only mildly (paper: "slightly").
    var = result.variation_rows
    assert result.variation_cost_increasing
    assert var[-1].time_avg_cost < var[0].time_avg_cost * 1.15
