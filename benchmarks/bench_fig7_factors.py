"""Bench Fig. 7 — ε, battery size and market structure.

Paper claims (Section VI-B.3): cost increases with ε; cost decreases
with UPS size; the two-timescale market beats real-time-only; and the
storage benefit exceeds the market benefit which exceeds the ε effect.
"""

from conftest import emit, run_once

from repro.experiments.fig7_factors import render, run_fig7


def test_fig7_factors(benchmark):
    result = run_once(benchmark, run_fig7)
    emit("fig7", render(result))

    assert result.epsilon_cost_nondecreasing
    assert result.battery_cost_nonincreasing
    assert result.two_markets_cheaper
    # Larger epsilon trades cost for delay: the largest ε must have
    # the smallest delay in the sweep.
    delays = [r.avg_delay_slots for r in result.epsilon_rows]
    assert delays[-1] == min(delays)
    # The market-structure effect is substantial (several percent).
    market = {r.label: r.time_avg_cost for r in result.market_rows}
    assert market["RTM"] > market["TM"] * 1.03
