"""Fleet sweep: a 10⁴-scenario streamed V-sweep with sharded batches.

Where ``quickstart.py`` runs three policies once, this example runs
SmartDPSS across **ten thousand scenarios** — 20 values of the
cost-delay parameter ``V`` × 500 trace seeds — without ever holding
more than one chunk of trace data per scenario in memory:

1. a declarative template :class:`ScenarioSpec` is expanded by
   :func:`grid_specs` into the fleet (each spec is a few hundred
   bytes of JSON, so the whole fleet ships to worker processes
   cheaply);
2. the :class:`FleetRunner` groups compatible specs, splits them into
   vectorized shards of 64, and advances every shard chunk-by-chunk
   through the streamed batch engine (results are bit-identical to
   the in-memory and scalar engines — see tests/equivalence/);
3. finished shards append incrementally to an on-disk
   :class:`ResultStore`, which then aggregates the 500 seed replicas
   per V into one seed-averaged :class:`SweepTable`;
4. the run is instrumented (``telemetry=True``): each shard carries a
   telemetry collector through the engine and solvers, the merged
   run manifest lands in the store's ``manifest.jsonl``, and the
   per-stage wall-time breakdown prints at the end — records are
   bit-identical with telemetry on or off.

The same fleet can be launched from the shell::

    python -m repro.fleet run --demo v-sweep --scenarios 10000 \\
        --days 1 --t-slots 6 --out out/fleet --workers 2 --telemetry
    python -m repro.fleet report --out out/fleet
    python -m repro.fleet stats out/fleet

Run:  PYTHONPATH=src python examples/fleet_sweep.py [n_scenarios]
"""

import sys
import tempfile
import time

import numpy as np

from repro.fleet import FleetRunner, ResultStore, ScenarioSpec, grid_specs


def main(n_scenarios: int = 10_000) -> None:
    values = [round(float(v), 4) for v in np.geomspace(0.05, 5.0, 20)]
    seeds = range(max(1, -(-n_scenarios // len(values))))
    template = ScenarioSpec(
        system={"preset": "paper", "days": 1,
                "fine_slots_per_coarse": 6},
        controller={"kind": "smartdpss"},
        trace={"kind": "stream"},
    )
    specs = grid_specs(template, "controller.v", values,
                       seeds=seeds)[:n_scenarios]
    print(f"fleet: {len(specs)} scenarios "
          f"({len(values)} V values x {len(seeds)} seeds, "
          f"{specs[0].build_system().horizon_slots}-slot horizon)")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        runner = FleetRunner(specs, batch_size=64, chunk_coarse=2,
                             store=store, telemetry=True)
        start = time.perf_counter()
        runner.run()
        elapsed = time.perf_counter() - start
        print(f"completed in {elapsed:.1f}s "
              f"({len(specs) / elapsed:.0f} scenarios/s), "
              f"{len(store)} records in {store.path}")
        print()
        # Where did the time go?  The run manifest breaks the sweep
        # into pipeline stages (also stored in manifest.jsonl; render
        # stored runs later with `python -m repro.fleet stats <dir>`).
        print(runner.last_manifest.render())
        print()

        table = store.sweep_table(
            name="SmartDPSS V-sweep (seed-averaged)",
            metrics=("time_avg_cost", "avg_delay_slots",
                     "worst_delay_slots", "availability"))
        print(table.render())
        print()
        print("the paper's [O(1/V), O(V)] trade-off, visible at fleet "
              "scale: cost falls and delay grows as V increases")
        assert table.is_monotone("avg_delay_slots", increasing=True,
                                 slack=0.05)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
