"""Property-based tests: P4 planning invariants."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.config.control import ObjectiveMode
from repro.core.p4 import P4State, _window_cost, solve_p4

profiles = st.lists(st.floats(min_value=0.0, max_value=2.0),
                    min_size=4, max_size=24)
price_profiles = st.lists(st.floats(min_value=0.5, max_value=20.0),
                          min_size=4, max_size=24)


@st.composite
def p4_states(draw):
    ds = draw(profiles)
    n = len(ds)
    renewable = draw(st.lists(
        st.floats(min_value=0.0, max_value=1.0),
        min_size=n, max_size=n))
    prices = draw(st.lists(
        st.floats(min_value=0.5, max_value=20.0),
        min_size=n, max_size=n))
    return P4State(
        v=draw(st.floats(min_value=0.05, max_value=5.0)),
        price_lt=draw(st.floats(min_value=0.5, max_value=20.0)),
        q_hat=draw(st.floats(min_value=0.0, max_value=20.0)),
        y_hat=draw(st.floats(min_value=0.0, max_value=20.0)),
        x_hat=draw(st.floats(min_value=-10.0, max_value=2.0)),
        t_slots=24,
        demand_ds=float(np.mean(ds)),
        renewable=float(np.mean(renewable)),
        battery_level=draw(st.floats(min_value=0.0, max_value=1.0)),
        p_grid=2.0,
        discharge_avail=draw(st.floats(min_value=0.0,
                                       max_value=0.05)),
        charge_headroom_total=draw(st.floats(min_value=0.0,
                                             max_value=1.0)),
        eta_c=0.8,
        s_dt_max=2.0,
        waste_penalty=draw(st.floats(min_value=0.0, max_value=0.3)),
        profile_demand_ds=tuple(ds),
        profile_demand_dt=tuple(
            draw(st.lists(st.floats(min_value=0.0, max_value=1.0),
                          min_size=n, max_size=n))),
        profile_renewable=tuple(renewable),
        profile_price_rt=tuple(prices),
        plan_deferrable_arrivals=draw(st.booleans()),
    )


@settings(max_examples=150, deadline=None)
@given(state=p4_states(),
       mode=st.sampled_from([ObjectiveMode.DERIVED,
                             ObjectiveMode.PAPER]))
def test_rate_within_physical_bounds(state, mode):
    solution = solve_p4(state, mode)
    assert 0.0 <= solution.rate <= state.p_grid + 1e-12
    assert solution.gbef == solution.rate * state.t_slots
    assert solution.rate >= min(solution.floor_rate,
                                state.p_grid) - 1e-12


@settings(max_examples=150, deadline=None)
@given(state=p4_states())
def test_floor_is_feasibility_floor(state):
    solution = solve_p4(state, ObjectiveMode.DERIVED)
    expected = max(0.0, state.demand_ds - state.renewable
                   - state.discharge_avail)
    assert solution.floor_rate == min(expected, state.p_grid)


@settings(max_examples=100, deadline=None)
@given(state=p4_states(),
       probes=st.lists(st.floats(min_value=0.0, max_value=1.0),
                       min_size=4, max_size=10))
def test_no_random_rate_beats_solution(state, probes):
    solution = solve_p4(state, ObjectiveMode.DERIVED)
    best = _window_cost(state, solution.rate)
    lo = solution.floor_rate
    for u in probes:
        rate = lo + u * (state.p_grid - lo)
        assert best <= _window_cost(state, rate) + 1e-7


@settings(max_examples=100, deadline=None)
@given(state=p4_states())
def test_paper_mode_is_bang_bang(state):
    solution = solve_p4(state, ObjectiveMode.PAPER)
    assert (solution.rate == solution.floor_rate
            or solution.rate == state.p_grid)


@settings(max_examples=100, deadline=None)
@given(state=p4_states())
def test_deterministic(state):
    a = solve_p4(state, ObjectiveMode.DERIVED)
    b = solve_p4(state, ObjectiveMode.DERIVED)
    assert a.rate == b.rate
