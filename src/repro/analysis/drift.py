"""Empirical verification of the Lyapunov drift inequality (Theorem 1).

The entire SmartDPSS analysis rests on a per-slot drift bound: with
``L(Θ) = ½(Q² + X² + Y²)`` and the queue dynamics of eqs. (2), (12),
(15), every slot satisfies

    L(Θ(τ+1)) − L(Θ(τ)) ≤ H_slot
                          + Q(τ)·(ddt − sdt)
                          + Y(τ)·(ε·1{Q>0} − sdt)
                          + X(τ)·(ηc·brc − ηd·bdc)

where ``H_slot`` collects the bounded quadratic terms.  (The paper's
printed Theorem 1 carries sign typos in the cross terms; this module
verifies the inequality as *derivable from the dynamics*, which is the
form the performance proofs actually need.)

:class:`DriftRecorder` wraps a SmartDPSS controller, logs
``(Q, X, Y)`` every slot during a normal engine run, and
:func:`verify_drift_inequality` then checks the bound at every recorded
slot — turning Theorem 1 from a claim in a PDF into a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.system import SystemConfig
from repro.core.interfaces import SlotFeedback
from repro.core.smartdpss import SmartDPSS


@dataclass(frozen=True)
class DriftSample:
    """One slot's queue states and flows (all post-physics truths)."""

    q_before: float
    q_after: float
    y_before: float
    y_after: float
    x_before: float
    x_after: float
    served_dt: float
    arrivals_dt: float
    charge: float
    discharge: float
    had_backlog: bool


class DriftRecorder(SmartDPSS):
    """SmartDPSS that logs the queue vector around every slot."""

    def __init__(self, config=None):
        super().__init__(config)
        self.samples: list[DriftSample] = []
        self._pending: dict | None = None

    def begin_horizon(self, system: SystemConfig) -> None:
        super().begin_horizon(system)
        self.samples = []
        self._pending = None

    def real_time(self, obs):
        x_now = obs.battery_level - self._x_queue.shift
        self._pending = {
            "q_before": obs.backlog,
            "y_before": self._y_queue.value,
            "x_before": x_now,
        }
        return super().real_time(obs)

    def end_slot(self, feedback: SlotFeedback) -> None:
        before = self._pending or {}
        had_backlog = feedback.had_backlog
        super().end_slot(feedback)
        if before:
            arrivals = (feedback.backlog
                        - max(before["q_before"] - feedback.served_dt,
                              0.0))
            self.samples.append(DriftSample(
                q_before=before["q_before"],
                q_after=feedback.backlog,
                y_before=before["y_before"],
                y_after=self._y_queue.value,
                x_before=before["x_before"],
                x_after=feedback.battery_level - self._x_queue.shift,
                served_dt=feedback.served_dt,
                arrivals_dt=max(0.0, arrivals),
                charge=feedback.charge,
                discharge=feedback.discharge,
                had_backlog=had_backlog,
            ))
        self._pending = None


def slot_h_constant(system: SystemConfig, epsilon: float) -> float:
    """The per-slot quadratic constant ``H_slot`` of the drift bound."""
    service_sq = system.s_dt_max ** 2
    arrival_sq = system.d_dt_max ** 2
    y_sq = max(system.s_dt_max, epsilon) ** 2
    battery_sq = max(system.b_charge_max * system.eta_c,
                     system.b_discharge_max * system.eta_d) ** 2
    return 0.5 * (service_sq + arrival_sq) + 0.5 * y_sq \
        + 0.5 * battery_sq


def lyapunov(q: float, x: float, y: float) -> float:
    """The quadratic Lyapunov function ``L(Θ) = ½(Q² + X² + Y²)``."""
    return 0.5 * (q * q + x * x + y * y)


def verify_drift_inequality(samples: list[DriftSample],
                            system: SystemConfig,
                            epsilon: float,
                            tolerance: float = 1e-6) -> dict:
    """Check the per-slot drift bound over every recorded sample.

    Returns a report with the worst margin (``bound − drift``; must be
    ≥ 0 everywhere) and the count of violations.
    """
    h_slot = slot_h_constant(system, epsilon)
    worst_margin = np.inf
    violations = 0
    for s in samples:
        drift = (lyapunov(s.q_after, s.x_after, s.y_after)
                 - lyapunov(s.q_before, s.x_before, s.y_before))
        growth = epsilon if s.had_backlog else 0.0
        cross = (s.q_before * (s.arrivals_dt - s.served_dt)
                 + s.y_before * (growth - s.served_dt)
                 + s.x_before * (system.eta_c * s.charge
                                 - system.eta_d * s.discharge))
        margin = h_slot + cross - drift
        if margin < worst_margin:
            worst_margin = margin
        if margin < -tolerance:
            violations += 1
    return {
        "n_samples": len(samples),
        "h_slot": h_slot,
        "worst_margin": float(worst_margin),
        "violations": violations,
        "holds": violations == 0,
    }
