"""T-step lookahead (MPC) baseline with a perfect short-term oracle.

The paper positions SmartDPSS against two-timescale designs that rely
on forecasts, citing Yao et al.'s "T-Step Lookahead algorithm" [29]:
solve the next window exactly with (assumed perfect) knowledge of its
demand, renewables and prices, commit the window's decisions, repeat.
SmartDPSS's selling point is matching such designs *without* any
forecast, so this controller quantifies exactly how much the perfect
short-term oracle is worth.

Implementation: at each coarse boundary the controller builds a small
LP over the coming ``T`` fine slots — the same physics as the offline
LP (balance, battery dynamics, queue dynamics, grid cap) — using the
*true* upcoming traces (the oracle), with a terminal value on stored
energy and served backlog so the window optimum is not myopically
end-drained.  The plan is then replayed open-loop within the window.
"""

from __future__ import annotations

import numpy as np

from repro.config.system import SystemConfig
from repro.core.interfaces import (
    CoarseObservation,
    Controller,
    FineObservation,
    RealTimeDecision,
)
from repro.solvers.highs import solve_with_highs
from repro.solvers.linear_program import LpModel
from repro.traces.base import TraceSet


class LookaheadController(Controller):
    """Window-exact MPC with a perfect oracle for the next window.

    Parameters
    ----------
    traces:
        The *true* traces (this controller is deliberately oracular).
    terminal_energy_value:
        $/MWh credited to energy left in the battery at window end
        (prevents end-of-window drain); a typical average price works.
    backlog_penalty:
        $/MWh charged for backlog left at window end, pushing the MPC
        to serve deferred load within a window or two.
    """

    def __init__(self, traces: TraceSet,
                 terminal_energy_value: float = 40.0,
                 backlog_penalty: float = 55.0):
        self._traces = traces
        self.terminal_energy_value = terminal_energy_value
        self.backlog_penalty = backlog_penalty
        self.system: SystemConfig | None = None
        self._window_grt: np.ndarray | None = None
        self._window_sdt: np.ndarray | None = None
        self._window_start = 0

    @property
    def name(self) -> str:
        return "Lookahead-MPC"

    def begin_horizon(self, system: SystemConfig) -> None:
        self.system = system
        self._window_grt = None
        self._window_sdt = None
        self._window_start = 0

    # ------------------------------------------------------------------
    # Window LP
    # ------------------------------------------------------------------

    def _solve_window(self, start: int, battery_level: float,
                      backlog: float, price_lt: float,
                      ) -> tuple[float, np.ndarray, np.ndarray]:
        system = self.system
        assert system is not None
        t = system.fine_slots_per_coarse
        end = min(start + t, self._traces.n_slots)
        n = end - start
        dds = self._traces.demand_ds[start:end]
        ddt = self._traces.demand_dt[start:end]
        renewable = self._traces.renewable[start:end]
        prt = self._traces.price_rt[start:end]

        model = LpModel(f"lookahead[{start}]")
        gbef = model.add_var("gbef", lb=0.0,
                             ub=system.p_grid * t,
                             cost=price_lt)
        grt = [model.add_var(f"grt[{i}]", lb=0.0, ub=system.p_grid,
                             cost=float(prt[i])) for i in range(n)]
        sdt = [model.add_var(f"sdt[{i}]", lb=0.0,
                             ub=system.s_dt_max) for i in range(n)]
        brc = [model.add_var(f"brc[{i}]", lb=0.0,
                             ub=system.b_charge_max)
               for i in range(n)]
        bdc = [model.add_var(f"bdc[{i}]", lb=0.0,
                             ub=system.b_discharge_max)
               for i in range(n)]
        waste = [model.add_var(f"w[{i}]", lb=0.0,
                               cost=system.waste_penalty)
                 for i in range(n)]
        level = [model.add_var(f"b[{i}]", lb=system.b_min,
                               ub=system.b_max)
                 for i in range(n + 1)]
        queue = [model.add_var(f"q[{i}]", lb=0.0)
                 for i in range(n + 1)]
        # Terminal values: stored energy is an asset, backlog a debt.
        model.add_eq({level[0]: 1.0}, battery_level)
        model.add_eq({queue[0]: 1.0}, backlog)
        terminal = model.add_var("terminal", lb=-np.inf, ub=np.inf,
                                 cost=1.0)
        model.add_eq({terminal: 1.0,
                      level[n]: self.terminal_energy_value,
                      queue[n]: -self.backlog_penalty}, 0.0)

        inv_t = 1.0 / t
        for i in range(n):
            model.add_eq({gbef: inv_t, grt[i]: 1.0, bdc[i]: 1.0,
                          brc[i]: -1.0, waste[i]: -1.0,
                          sdt[i]: -1.0},
                         float(dds[i] - renewable[i]))
            model.add_le({gbef: inv_t, grt[i]: 1.0}, system.p_grid)
            model.add_eq({level[i + 1]: 1.0, level[i]: -1.0,
                          brc[i]: -system.eta_c,
                          bdc[i]: system.eta_d}, 0.0)
            model.add_eq({queue[i + 1]: 1.0, queue[i]: -1.0,
                          sdt[i]: 1.0}, float(ddt[i]))
            model.add_le({sdt[i]: 1.0, queue[i]: -1.0}, 0.0)

        solution = solve_with_highs(model)
        return (solution.value(gbef), solution.values(grt),
                solution.values(sdt))

    # ------------------------------------------------------------------
    # Controller protocol
    # ------------------------------------------------------------------

    def plan_long_term(self, obs: CoarseObservation) -> float:
        gbef, grt, sdt = self._solve_window(
            obs.fine_slot, obs.battery_level, obs.backlog,
            obs.price_lt)
        self._window_grt = grt
        self._window_sdt = sdt
        self._window_start = obs.fine_slot
        return gbef

    def real_time(self, obs: FineObservation) -> RealTimeDecision:
        assert self._window_grt is not None, "plan_long_term not called"
        offset = obs.fine_slot - self._window_start
        grt = float(self._window_grt[offset])
        planned_service = float(self._window_sdt[offset])
        if obs.backlog > 1e-12 and planned_service > 0:
            gamma = min(1.0, planned_service / obs.backlog)
        else:
            gamma = 0.0
        return RealTimeDecision(grt=grt, gamma=gamma)


class PaperP2Offline(LookaheadController):
    """The paper's own offline construction (Section II-D, problem P2).

    P2 serves the *total* demand ``d(τ)`` in every slot — no strategic
    deferral — with clairvoyant knowledge of the coarse window and the
    battery as the only flexibility.  Realized here as the lookahead
    MPC with a backlog penalty high enough that deferred demand is
    cleared at the first feasible opportunity, which is exactly P2's
    behaviour under the engine's arrive-then-serve queue semantics.

    Comparing it against the joint full-horizon LP
    (:class:`~repro.baselines.offline.OfflineOptimal`) measures how
    much the paper's per-window benchmark leaves on the table.
    """

    def __init__(self, traces: TraceSet,
                 terminal_energy_value: float = 40.0):
        super().__init__(traces,
                         terminal_energy_value=terminal_energy_value,
                         backlog_penalty=10_000.0)

    @property
    def name(self) -> str:
        return "PaperP2-Offline"
