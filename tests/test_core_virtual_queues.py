"""Virtual queues Y (eq. 12) and X (eq. 14)."""

import pytest

from repro.core.virtual_queues import (
    BatteryVirtualQueue,
    DelayAwareQueue,
    operational_shift,
    paper_shift,
)
from repro.exceptions import (
    ConfigurationError,
    InfeasibleActionError,
    StateError,
)


class TestDelayAwareQueue:
    def test_grows_by_epsilon_with_backlog(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(served_dt=0.0, had_backlog=True)
        assert queue.value == pytest.approx(0.5)

    def test_no_growth_without_backlog(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(served_dt=0.0, had_backlog=False)
        assert queue.value == 0.0

    def test_service_drains(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(0.0, True)   # Y = 0.5
        queue.update(0.3, True)   # Y = 0.5 - 0.3 + 0.5 = 0.7
        assert queue.value == pytest.approx(0.7)

    def test_never_negative(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(0.0, True)
        queue.update(5.0, False)
        assert queue.value == 0.0

    def test_exact_recurrence(self):
        queue = DelayAwareQueue(epsilon=0.3)
        y = 0.0
        script = [(0.0, True), (0.1, True), (0.5, True), (0.0, False),
                  (0.2, True), (1.0, True)]
        for service, backlog in script:
            queue.update(service, backlog)
            y = max(y - service + (0.3 if backlog else 0.0), 0.0)
            assert queue.value == pytest.approx(y)

    def test_peak_tracked(self):
        queue = DelayAwareQueue(epsilon=1.0)
        for _ in range(5):
            queue.update(0.0, True)
        queue.update(10.0, False)
        assert queue.peak == pytest.approx(5.0)

    def test_reset(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(0.0, True)
        queue.reset()
        assert queue.value == 0.0
        assert queue.peak == 0.0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayAwareQueue(epsilon=0.0)

    def test_negative_service_rejected(self):
        with pytest.raises(InfeasibleActionError):
            DelayAwareQueue(0.5).update(-0.1, True)


class TestBatteryVirtualQueue:
    def test_observe_computes_shifted_level(self):
        queue = BatteryVirtualQueue(shift=2.0)
        assert queue.observe(0.5) == pytest.approx(-1.5)
        assert queue.value == pytest.approx(-1.5)

    def test_extremes_tracked(self):
        queue = BatteryVirtualQueue(shift=1.0)
        queue.observe(0.2)
        queue.observe(0.9)
        queue.observe(0.5)
        low, high = queue.extremes
        assert low == pytest.approx(-0.8)
        assert high == pytest.approx(-0.1)

    def test_value_before_observe_raises(self):
        with pytest.raises(StateError):
            BatteryVirtualQueue(1.0).value

    def test_extremes_before_observe_raises(self):
        with pytest.raises(StateError):
            BatteryVirtualQueue(1.0).extremes

    def test_retarget(self):
        queue = BatteryVirtualQueue(shift=1.0)
        queue.retarget(3.0)
        assert queue.observe(1.0) == pytest.approx(-2.0)

    def test_reset_keeps_shift(self):
        queue = BatteryVirtualQueue(shift=1.5)
        queue.observe(1.0)
        queue.reset()
        assert queue.shift == 1.5
        with pytest.raises(StateError):
            queue.value


class TestShiftFormulas:
    def test_paper_shift(self):
        # Umax + Bmin + Bdmax*eta_d (eq. 14).
        assert paper_shift(u_max=2.0, b_min=0.1, b_discharge_max=0.5,
                           eta_d=1.25) == pytest.approx(2.725)

    def test_operational_shift_centres_mid_capacity(self):
        shift = operational_shift(b_min=0.0, b_max=1.0, v=0.0001,
                                  reference_price=5.0)
        assert shift == pytest.approx(0.5, abs=0.01)

    def test_operational_shift_scales_with_v_and_price(self):
        low = operational_shift(0.0, 1.0, v=1.0, reference_price=4.0)
        high = operational_shift(0.0, 1.0, v=2.0, reference_price=4.0)
        assert high - low == pytest.approx(4.0)


class TestStateRoundTrip:
    """The explicit state()/load_state() sync contract."""

    def test_delay_queue_round_trip(self):
        queue = DelayAwareQueue(epsilon=0.5)
        queue.update(0.0, had_backlog=True)
        queue.update(0.2, had_backlog=True)
        snapshot = queue.state()
        other = DelayAwareQueue(epsilon=0.5)
        other.load_state(snapshot)
        assert other.state() == snapshot
        assert other.value == queue.value
        assert other.peak == queue.peak

    def test_delay_queue_rejects_negative_state(self):
        queue = DelayAwareQueue(epsilon=0.5)
        with pytest.raises(ConfigurationError):
            queue.load_state({"value": -1.0, "peak": 0.0})

    def test_battery_queue_round_trip(self):
        queue = BatteryVirtualQueue(shift=0.3)
        queue.observe(0.8)
        queue.observe(0.1)
        snapshot = queue.state()
        other = BatteryVirtualQueue(shift=0.0)
        other.load_state(snapshot)
        assert other.state() == snapshot
        assert other.extremes == queue.extremes
        assert other.value == queue.value

    def test_battery_queue_restores_never_observed(self):
        observed = BatteryVirtualQueue(shift=1.0)
        observed.observe(2.0)
        observed.load_state(BatteryVirtualQueue(shift=1.0).state())
        with pytest.raises(StateError):
            observed.value
        with pytest.raises(StateError):
            observed.extremes

    def test_battery_queue_rejects_partial_observation(self):
        queue = BatteryVirtualQueue(shift=0.0)
        with pytest.raises(ConfigurationError):
            queue.load_state({"shift": 0.0, "value": 1.0,
                              "min_seen": None, "max_seen": 1.0})
