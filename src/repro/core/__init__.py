"""The paper's contribution: the SmartDPSS online control algorithm.

Layout:

* :mod:`repro.core.interfaces` — the controller protocol every policy
  (SmartDPSS and all baselines) implements, plus the observation and
  decision records exchanged with the simulation engine;
* :mod:`repro.core.virtual_queues` — the delay-aware queue ``Y``
  (eq. 12) and the shifted battery queue ``X`` (eqs. 14-15);
* :mod:`repro.core.bounds` — every constant of Theorems 1-3 and
  Corollaries 1-2 (``H1, H2, H3, Vmax, Qmax, Ymax, Umax, λmax``), in
  both the paper-literal and implementation-consistent variants;
* :mod:`repro.core.p4` / :mod:`repro.core.p5` — the two-timescale
  subproblem solvers (long-term-ahead planning and real-time
  balancing);
* :mod:`repro.core.smartdpss` — Algorithm 1 tying it all together.
"""

from repro.core.bounds import BoundVariant, TheoreticalBounds
from repro.core.interfaces import (
    Controller,
    CoarseObservation,
    FineObservation,
    RealTimeDecision,
    SlotFeedback,
)
from repro.core.p4 import solve_p4
from repro.core.p5 import solve_p5
from repro.core.p5_vec import solve_p5_batch
from repro.core.smartdpss import SmartDPSS
from repro.core.smartdpss_vec import VecSmartDPSS
from repro.core.virtual_queues import BatteryVirtualQueue, DelayAwareQueue

__all__ = [
    "Controller",
    "CoarseObservation",
    "FineObservation",
    "RealTimeDecision",
    "SlotFeedback",
    "DelayAwareQueue",
    "BatteryVirtualQueue",
    "TheoreticalBounds",
    "BoundVariant",
    "solve_p4",
    "solve_p5",
    "solve_p5_batch",
    "SmartDPSS",
    "VecSmartDPSS",
]
