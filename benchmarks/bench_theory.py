"""Bench the theory-verification harness.

Regenerates the paper's *analytical* content rather than a figure:

* trace validation — the statistical properties the substitution
  argument (DESIGN.md §3) rests on;
* Theorem 1 — the per-slot drift inequality, verified over a month;
* Theorem 2 — queue/battery/delay/cost-gap bounds against a run;
* savings decomposition — the Fig. 7 effect-size ranking measured by
  counterfactual ladder.
"""

from conftest import emit, run_once

from repro.analysis.decomposition import decompose_savings
from repro.analysis.drift import DriftRecorder, verify_drift_inequality
from repro.analysis.peaks import demand_charge, peak_report
from repro.analysis.tables import format_table
from repro.analysis.theory import all_hold, verify_theorem2
from repro.baselines.offline import OfflineOptimal
from repro.config.presets import paper_controller_config, paper_system_config
from repro.sim.engine import Simulator
from repro.traces.library import make_paper_traces
from repro.traces.validation import all_valid, validate_paper_traces


def theory_report(seed: int = 20130708) -> dict:
    system = paper_system_config()
    traces = make_paper_traces(system, seed=seed)
    config = paper_controller_config()

    validation = validate_paper_traces(traces)

    recorder = DriftRecorder(config)
    result = Simulator(system, recorder, traces).run()
    drift = verify_drift_inequality(recorder.samples, system,
                                    config.epsilon)

    offline = Simulator(system, OfflineOptimal(traces), traces).run()
    theorem2 = verify_theorem2(
        result, v=config.v, epsilon=config.epsilon,
        price_cap_normalized=system.p_max / config.price_scale,
        y_peak=recorder.delay_queue.peak,
        offline_time_average=offline.time_average_cost)

    decomposition = decompose_savings(system, traces, config)
    peaks = peak_report(result)
    peaks["demand_charge_usd"] = demand_charge(result)
    return {
        "validation": validation,
        "drift": drift,
        "theorem2": theorem2,
        "decomposition": decomposition,
        "peaks": peaks,
    }


def render(report: dict) -> str:
    parts = ["Theory verification (paper system, V=1, eps=0.5)", ""]
    parts.append("trace validation:")
    parts.extend(f"  {check}" for check in report["validation"])
    parts.append("")
    drift = report["drift"]
    parts.append(
        f"Theorem 1 drift inequality: holds={drift['holds']} over "
        f"{drift['n_samples']} slots (worst margin "
        f"{drift['worst_margin']:.3f}, H_slot={drift['h_slot']:.3f})")
    parts.append("")
    parts.append("Theorem 2 bounds:")
    parts.extend(f"  {check}" for check in report["theorem2"])
    parts.append("")
    rows = report["decomposition"].as_rows()
    parts.append(format_table(["mechanism", "$/slot saved"], rows,
                              title="savings decomposition"))
    parts.append("")
    peaks = report["peaks"]
    parts.append(
        "grid-draw peaks (paper Section IV-C future work): "
        f"peak={peaks['peak_mwh']:.2f} MWh, "
        f"p99={peaks['p99_mwh']:.2f}, load factor "
        f"{peaks['load_factor']:.2f}, demand charge "
        f"${peaks['demand_charge_usd']:.0f}/month at $10k/MW")
    return "\n".join(parts)


def test_theory_verification(benchmark):
    report = run_once(benchmark, theory_report)
    emit("theory", render(report))

    assert all_valid(report["validation"])
    assert report["drift"]["holds"]
    assert all_hold(report["theorem2"])
    decomposition = report["decomposition"]
    assert decomposition.total_saving > 0.0
    assert decomposition.markets_value > 0.0
