"""Myopic price-threshold heuristic (extra baseline for ablations).

A single-timescale policy that captures the folk wisdom "run batch jobs
when power is cheap" without any Lyapunov machinery: it keeps a running
estimate of the real-time price distribution and serves the backlog
only when the current price falls below a configurable quantile (or
when renewable surplus is available for free).  Long-term purchasing
covers only the delay-sensitive forecast.

Comparing SmartDPSS against this heuristic (benchmarks/bench_ablations)
separates how much of the paper's gain comes from the *two-timescale
Lyapunov structure* versus from generic price-awareness.
"""

from __future__ import annotations

import bisect

from repro.config.system import SystemConfig
from repro.core.interfaces import (
    CoarseObservation,
    Controller,
    FineObservation,
    RealTimeDecision,
)
from repro.exceptions import ConfigurationError


class _RunningQuantile:
    """Exact running quantile over a bounded history (insertion sort)."""

    def __init__(self, quantile: float, max_history: int = 2000):
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(f"quantile must be in (0,1), got {quantile}")
        self.quantile = quantile
        self.max_history = max_history
        self._sorted: list[float] = []
        self._order: list[float] = []

    def observe(self, value: float) -> None:
        bisect.insort(self._sorted, value)
        self._order.append(value)
        if len(self._order) > self.max_history:
            oldest = self._order.pop(0)
            index = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(index)

    @property
    def value(self) -> float:
        if not self._sorted:
            return float("inf")
        index = int(self.quantile * (len(self._sorted) - 1))
        return self._sorted[index]


class MyopicPriceThreshold(Controller):
    """Serve deferrable load when the price is in its cheap tail."""

    def __init__(self, serve_quantile: float = 0.3,
                 max_wait_slots: int = 48):
        self.serve_quantile = serve_quantile
        self.max_wait_slots = max_wait_slots
        self.system: SystemConfig | None = None
        self._quantile = _RunningQuantile(serve_quantile)
        self._slots_with_backlog = 0

    @property
    def name(self) -> str:
        return f"Myopic(q={self.serve_quantile:g})"

    def begin_horizon(self, system: SystemConfig) -> None:
        self.system = system
        self._quantile = _RunningQuantile(self.serve_quantile)
        self._slots_with_backlog = 0

    def plan_long_term(self, obs: CoarseObservation) -> float:
        assert self.system is not None, "begin_horizon() not called"
        rate = max(0.0, obs.demand_ds - obs.renewable)
        rate = min(rate, self.system.p_grid)
        return rate * self.system.fine_slots_per_coarse

    def real_time(self, obs: FineObservation) -> RealTimeDecision:
        assert self.system is not None, "begin_horizon() not called"
        system = self.system
        self._quantile.observe(obs.price_rt)
        if obs.backlog > 1e-12:
            self._slots_with_backlog += 1
        else:
            self._slots_with_backlog = 0

        surplus = max(0.0, obs.long_term_rate + obs.renewable
                      - obs.demand_ds)
        cheap = obs.price_rt <= self._quantile.value
        overdue = self._slots_with_backlog >= self.max_wait_slots
        serve = obs.backlog > 1e-12 and (cheap or overdue
                                         or surplus > 1e-12)
        gamma = 1.0 if serve else 0.0
        sdt = min(obs.backlog, system.s_dt_max) if serve else 0.0
        needed = obs.demand_ds + sdt - obs.long_term_rate - obs.renewable
        grt = min(max(0.0, needed), obs.grid_headroom,
                  obs.supply_headroom)
        return RealTimeDecision(grt=grt, gamma=gamma)
