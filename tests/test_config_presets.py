"""Paper preset builders (Section VI-A parameterization)."""

import pytest

from repro.config.presets import (
    PAPER_UPS_CYCLE_LIFE,
    PAPER_UPS_PURCHASE_COST,
    paper_controller_config,
    paper_system_config,
)
from repro.exceptions import ConfigurationError


class TestPaperSystem:
    def test_default_horizon_one_month_day_ahead(self):
        system = paper_system_config()
        assert system.horizon_slots == 744
        assert system.fine_slots_per_coarse == 24
        assert system.num_coarse_slots == 31

    def test_paper_constants(self):
        system = paper_system_config()
        assert system.p_grid == pytest.approx(2.0)
        assert system.b_charge_max == pytest.approx(0.5)
        assert system.b_discharge_max == pytest.approx(0.5)
        assert system.eta_c == pytest.approx(0.8)
        assert system.eta_d == pytest.approx(1.25)
        # Cb = Cbuy / Ccycle = 500 / 5000 = 0.1 dollars.
        assert system.battery_op_cost == pytest.approx(
            PAPER_UPS_PURCHASE_COST / PAPER_UPS_CYCLE_LIFE)
        assert system.battery_op_cost == pytest.approx(0.1)

    def test_battery_sized_in_minutes(self):
        system = paper_system_config(battery_minutes=15.0)
        assert system.b_max == pytest.approx(0.5)
        system = paper_system_config(battery_minutes=30.0)
        assert system.b_max == pytest.approx(1.0)

    def test_zero_battery(self):
        system = paper_system_config(battery_minutes=0.0)
        assert system.b_max == 0.0
        assert not system.has_battery

    def test_t_sweep_configs(self):
        for t_slots in (3, 6, 12, 24, 48, 72, 144):
            system = paper_system_config(days=30,
                                         fine_slots_per_coarse=t_slots)
            assert system.horizon_slots == 720

    def test_indivisible_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_system_config(days=31, fine_slots_per_coarse=48)

    def test_cycle_budget_passthrough(self):
        system = paper_system_config(cycle_budget=100)
        assert system.cycle_budget == 100


class TestPaperController:
    def test_defaults(self):
        config = paper_controller_config()
        assert config.v == 1.0
        assert config.epsilon == 0.5
        assert config.use_long_term_market
        assert config.use_battery

    def test_mode_string(self):
        config = paper_controller_config(objective_mode="paper")
        assert config.is_paper_mode

    def test_rtm_only(self):
        config = paper_controller_config(use_long_term_market=False)
        assert not config.use_long_term_market
