"""Span timers, counters, and gauges for the fleet pipeline.

Design constraints (set by the streamed engines this instruments):

* **Explicitly passed, never global.**  A :class:`Telemetry` object is
  handed down the call chain (runner → engine → controller → solver)
  exactly like the workspace knob — worker processes each own one, and
  nothing on the hot path reads module state.
* **Near-zero overhead when disabled.**  Every instrumented call site
  either checks one attribute (``tele.enabled``) before touching the
  clock, or calls into :data:`TELEMETRY_OFF` — a process-wide
  :class:`NullTelemetry` singleton whose methods are allocation-free
  no-ops (``span`` returns one shared context manager; nothing is
  created per call).  The records a simulation produces are the same
  bit for bit whether telemetry is on or off: instrumentation only
  ever *reads* the monotonic clock, never any numeric state
  (``tests/equivalence/test_telemetry_identity.py`` pins this).
* **Mergeable across process boundaries.**  A worker reduces its
  telemetry to a :class:`TelemetrySnapshot` of plain dicts (picklable,
  JSON-ready); the parent merges shard snapshots with
  :meth:`TelemetrySnapshot.merge` — sums for span totals/counts and
  counters, maxima for span peaks and gauges — into the run-level
  :class:`~repro.telemetry.manifest.RunManifest`.

Span semantics: one span name accumulates ``total_s`` / ``count`` /
``max_s`` over all its enter/exit pairs on the monotonic clock
(:func:`time.perf_counter`).  Spans may nest (``plan`` contains
``p4``); totals of nested names therefore overlap and are reported as
a *breakdown*, not a partition.  On multi-worker runs the totals sum
worker wall-time, so stage totals can legitimately exceed the run's
elapsed wall-clock.

Quickstart::

    from repro.telemetry import Telemetry

    tele = Telemetry()
    with tele.span("solve"):
        ...
    tele.count("scenarios", 64)
    snapshot = tele.snapshot(process=True)
    print(snapshot.spans["solve"]["total_s"])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "NullTelemetry",
    "TELEMETRY_OFF",
    "Telemetry",
    "TelemetrySnapshot",
    "monotonic",
    "resolve_telemetry",
]


def monotonic() -> float:
    """The library's one blessed clock read (monotonic seconds).

    Everything outside :mod:`repro.telemetry` that needs elapsed time
    (shard timing, CLI progress rates) calls this instead of touching
    :mod:`time` directly, so the wallclock-hygiene lint rule
    (``repro.lint`` R005) can statically guarantee that record-producing
    code paths never read a clock the replay layer cannot substitute.
    Same clock as :attr:`Telemetry.clock` (:func:`time.perf_counter`).
    """
    return time.perf_counter()


class _NullSpan:
    """The shared do-nothing context manager ``NullTelemetry.span``
    returns — one instance per process, so disabled spans allocate
    nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled instrumentation: every operation is an allocation-free
    no-op.

    Instrumented call sites keep a reference to either a live
    :class:`Telemetry` or this class's singleton :data:`TELEMETRY_OFF`,
    so the disabled cost of a guarded site is one ``.enabled``
    attribute check (and of an unguarded site, one method call that
    does nothing).
    """

    __slots__ = ()

    enabled = False
    clock = staticmethod(time.perf_counter)

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_time(self, name: str, seconds: float) -> None:
        pass

    def count(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def snapshot(self, process: bool = False) -> "TelemetrySnapshot":
        return TelemetrySnapshot()


#: Process-wide disabled singleton; ``telemetry=None`` resolves here.
TELEMETRY_OFF = NullTelemetry()


def resolve_telemetry(telemetry) -> "Telemetry | NullTelemetry":
    """Normalize a telemetry argument (``None``/``False`` → off,
    ``True`` → a fresh collector, an instance → itself)."""
    if telemetry is None or telemetry is False:
        return TELEMETRY_OFF
    if telemetry is True:
        return Telemetry()
    return telemetry


class _Span:
    """Reusable context manager accumulating into one name's stats.

    One instance per (telemetry, name): entering records the clock,
    exiting folds the elapsed time into the shared ``[total, count,
    max]`` list.  Same-name spans must not nest (no pipeline stage
    does); distinct names nest freely.
    """

    __slots__ = ("_stats", "_t0")

    def __init__(self, stats: list):
        self._stats = stats
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        stats = self._stats
        stats[0] += elapsed
        stats[1] += 1
        if elapsed > stats[2]:
            stats[2] = elapsed
        return False


class Telemetry:
    """Enabled instrumentation: monotonic span timers, counters, gauges.

    All state is instance-local (explicitly passed down the pipeline);
    :meth:`snapshot` reduces it to plain dicts for the process
    boundary.  Not thread-safe — one collector per worker/shard, by
    construction of the fleet runner.
    """

    __slots__ = ("_spans", "_span_objs", "_counters", "_gauges")

    enabled = True
    clock = staticmethod(time.perf_counter)

    def __init__(self):
        self._spans: dict[str, list] = {}
        self._span_objs: dict[str, _Span] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def span(self, name: str) -> _Span:
        """The (cached, reusable) timing context manager for ``name``."""
        span = self._span_objs.get(name)
        if span is None:
            stats = self._spans.setdefault(name, [0.0, 0, 0.0])
            span = self._span_objs[name] = _Span(stats)
        return span

    def add_time(self, name: str, seconds: float) -> None:
        """Fold one externally-timed interval into span ``name``.

        The manual twin of :meth:`span` for hot sites that guard on
        ``.enabled`` and call ``clock()`` themselves.
        """
        stats = self._spans.get(name)
        if stats is None:
            stats = self._spans[name] = [0.0, 0, 0.0]
        stats[0] += seconds
        stats[1] += 1
        if seconds > stats[2]:
            stats[2] = seconds

    def count(self, name: str, value: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def snapshot(self, process: bool = False) -> "TelemetrySnapshot":
        """Reduce to a plain-dict snapshot (picklable, JSON-ready).

        ``process=True`` additionally samples process-level facts:
        peak RSS (``resource.getrusage``, kilobytes on Linux) and — if
        a :mod:`tracemalloc` trace happens to be running — the traced
        current/peak byte counts (the optional allocation probe).
        """
        spans = {name: {"total_s": stats[0], "count": stats[1],
                        "max_s": stats[2]}
                 for name, stats in self._spans.items()}
        proc: dict[str, float] = {}
        if process:
            proc = _process_sample()
        return TelemetrySnapshot(spans=spans,
                                 counters=dict(self._counters),
                                 gauges=dict(self._gauges),
                                 process=proc)


def _process_sample() -> dict[str, float]:
    """Peak RSS plus the optional tracemalloc probe (see snapshot)."""
    sample: dict[str, float] = {}
    try:
        import resource

        sample["peak_rss_kb"] = float(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, ValueError):  # pragma: no cover - non-unix
        pass
    import tracemalloc

    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        sample["tracemalloc_current_kb"] = current / 1024
        sample["tracemalloc_peak_kb"] = peak / 1024
    return sample


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One collector's state as plain dicts (what crosses processes).

    ``spans`` maps name → ``{"total_s", "count", "max_s"}``;
    ``counters`` and ``gauges`` map name → number; ``process`` holds
    the optional peak-RSS / tracemalloc sample.  :meth:`merge` is
    associative and commutative (sums and maxima), with the empty
    snapshot as identity — shard snapshots therefore fold into a run
    total in any order, which the fleet runner relies on when shards
    finish out of order across workers.
    """

    spans: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    process: dict = field(default_factory=dict)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """This snapshot folded with ``other`` (neither is mutated)."""
        spans = {name: dict(stats) for name, stats in self.spans.items()}
        for name, stats in other.spans.items():
            mine = spans.get(name)
            if mine is None:
                spans[name] = dict(stats)
            else:
                mine["total_s"] += stats["total_s"]
                mine["count"] += stats["count"]
                mine["max_s"] = max(mine["max_s"], stats["max_s"])
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) \
                if name in gauges else value
        process = dict(self.process)
        for name, value in other.process.items():
            process[name] = max(process[name], value) \
                if name in process else value
        return TelemetrySnapshot(spans=spans, counters=counters,
                                 gauges=gauges, process=process)

    @classmethod
    def merge_all(cls, snapshots: Iterable["TelemetrySnapshot"]
                  ) -> "TelemetrySnapshot":
        """Fold any number of snapshots (empty iterable → identity)."""
        merged = cls()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def as_dict(self) -> dict:
        """JSON-ready plain-dict form (inverse of :meth:`from_dict`)."""
        return {"spans": {name: dict(stats)
                          for name, stats in self.spans.items()},
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "process": dict(self.process)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TelemetrySnapshot":
        return cls(spans={name: dict(stats) for name, stats
                          in dict(data.get("spans", {})).items()},
                   counters=dict(data.get("counters", {})),
                   gauges=dict(data.get("gauges", {})),
                   process=dict(data.get("process", {})))
