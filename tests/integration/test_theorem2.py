"""Theorem 2 verification against simulations.

Two regimes:

* the paper's own evaluation battery violates the ``Vmax > 0``
  precondition, so there the *implementation-consistent* bounds are
  checked (they must still hold — the engine clamps the battery and
  the thresholds bound the queues);
* a big-battery configuration where ``Vmax > 0`` genuinely holds.
"""

import pytest

from repro.analysis.theory import all_hold, verify_theorem2
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.bounds import BoundVariant, compute_bounds
from repro.core.smartdpss import SmartDPSS
from repro.sim.engine import Simulator
from repro.traces.library import make_paper_traces


def normalized_cap(system, config) -> float:
    return system.p_max / config.price_scale


class TestPaperScaleSystem:
    @pytest.mark.parametrize("v", [0.05, 0.5, 1.0, 5.0])
    def test_implementation_bounds_hold(self, v):
        system = paper_system_config()
        traces = make_paper_traces(system, seed=55)
        config = paper_controller_config(v=v)
        controller = SmartDPSS(config)
        result = Simulator(system, controller, traces).run()
        checks = verify_theorem2(
            result, v=v, epsilon=config.epsilon,
            price_cap_normalized=normalized_cap(system, config),
            y_peak=controller.delay_queue.peak)
        assert all_hold(checks), "\n".join(str(c) for c in checks)

    def test_vmax_negative_documented(self):
        system = paper_system_config()
        bounds = compute_bounds(system, 1.0, 0.5, 20.0)
        assert not bounds.theory_applies


class TestBigBatterySystem:
    def big_system(self):
        # Battery large enough that the paper's precondition holds.
        return paper_system_config().replace(
            b_max=25.0, b_min=0.5, b_init=12.0)

    def test_vmax_positive(self):
        bounds = compute_bounds(self.big_system(), 1.0, 0.5, 20.0)
        assert bounds.theory_applies
        assert 0 < 1.0 <= bounds.v_max

    def test_bounds_hold_with_big_battery(self):
        system = self.big_system()
        traces = make_paper_traces(system, seed=56)
        config = paper_controller_config(v=1.0)
        controller = SmartDPSS(config)
        result = Simulator(system, controller, traces).run()
        checks = verify_theorem2(
            result, v=1.0, epsilon=config.epsilon,
            price_cap_normalized=normalized_cap(system, config),
            y_peak=controller.delay_queue.peak)
        assert all_hold(checks), "\n".join(str(c) for c in checks)


class TestCostGap:
    def test_gap_within_h2_over_v(self):
        # Theorem 2-(5): Cost_av <= φopt + H2/V.  H2/V is enormous at
        # paper scale, so this is loose — but it must hold.
        from repro.baselines.offline import OfflineOptimal
        system = paper_system_config()
        traces = make_paper_traces(system, seed=57)
        config = paper_controller_config(v=1.0)
        smart = Simulator(system, SmartDPSS(config), traces).run()
        offline = Simulator(system, OfflineOptimal(traces),
                            traces).run()
        checks = verify_theorem2(
            smart, v=1.0, epsilon=config.epsilon,
            price_cap_normalized=normalized_cap(system, config),
            offline_time_average=offline.time_average_cost)
        gap_check = next(c for c in checks if "cost gap" in c.claim)
        assert gap_check.holds


class TestBoundTightnessTrend:
    def test_peak_backlog_grows_with_v_like_bound(self):
        system = paper_system_config()
        traces = make_paper_traces(system, seed=58)
        peaks = []
        for v in (0.05, 5.0):
            result = Simulator(
                system, SmartDPSS(paper_controller_config(v=v)),
                traces).run()
            peaks.append(result.peak_backlog)
        # Qmax scales with V; realized peaks should follow the trend.
        assert peaks[1] > peaks[0]
