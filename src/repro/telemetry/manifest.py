"""Run manifests: one JSON record describing a whole fleet run.

A :class:`RunManifest` is the run-level reduction of per-shard
:class:`~repro.telemetry.core.TelemetrySnapshot`\\ s plus the run's
configuration — what a sweep *was* (fleet content hash, backend,
worker count, engine split) and where its time *went* (per-stage
wall-time breakdown, scenarios/s, cache warm-up).  The fleet runner
appends it to a ``manifest.jsonl`` sidecar next to the result store's
``results.jsonl`` (same append-only, torn-write-tolerant discipline),
so every stored sweep carries its own performance record and
``python -m repro.fleet stats <store>`` can render breakdowns long
after the run.

Stage totals come from overlapping spans (``plan`` contains ``p4``;
``slot_loop`` contains ``plan``/``real_time``/``physics``) and, on
multi-worker runs, sum *worker* wall-time — so shares are reported
against the summed per-shard time (the ``shard`` span), not the
run's elapsed wall-clock.
"""

from __future__ import annotations

import datetime as _datetime
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.telemetry.core import TelemetrySnapshot

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "build_manifest",
    "fleet_content_hash",
    "render_manifest",
    "stage_split",
]

MANIFEST_VERSION = 1

#: Stage names whose spans are disjoint at the top level — the rows
#: shown first by the breakdown table; everything else (nested spans)
#: renders indented below its parent where known.
_NESTED_UNDER = {
    "plan": "slot_loop",
    "p4": "plan",
    "real_time": "slot_loop",
    "p5": "real_time",
    "physics": "slot_loop",
    "lp_solve": "offline_lp",
}


def fleet_content_hash(spec_hashes: Iterable[str]) -> str:
    """Content hash of a whole fleet: order-independent digest of its
    per-scenario spec hashes (two runs over the same scenarios share
    it, whatever the spec order)."""
    digest = hashlib.sha256()
    for spec_hash in sorted(spec_hashes):
        digest.update(spec_hash.encode("ascii"))
    return digest.hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """One fleet run's telemetry reduced to a JSON-ready record."""

    created_at: str
    fleet: dict
    config: dict
    timing: dict
    stages: dict
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    process: dict = field(default_factory=dict)
    caches: dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "created_at": self.created_at,
            "fleet": dict(self.fleet),
            "config": dict(self.config),
            "timing": dict(self.timing),
            "stages": {name: dict(stats)
                       for name, stats in self.stages.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "process": dict(self.process),
            "caches": dict(self.caches),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        return cls(
            created_at=str(data.get("created_at", "")),
            fleet=dict(data.get("fleet", {})),
            config=dict(data.get("config", {})),
            timing=dict(data.get("timing", {})),
            stages={name: dict(stats) for name, stats
                    in dict(data.get("stages", {})).items()},
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            process=dict(data.get("process", {})),
            caches=dict(data.get("caches", {})),
            version=int(data.get("version", MANIFEST_VERSION)),
        )

    def render(self) -> str:
        """Human-readable breakdown (what ``fleet stats`` prints)."""
        return render_manifest(self)


def _utc_now_iso() -> str:
    return _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds")


def build_manifest(*, spec_hashes: Iterable[str], scenarios: int,
                   executed: int, skipped: int, shards: int,
                   engines: Mapping[str, int], workers: int,
                   batch_size: int, chunk_coarse: int,
                   batch_traces: bool, workspace: bool | None,
                   offline_gap: bool, elapsed_s: float,
                   snapshot: TelemetrySnapshot,
                   caches: Mapping | None = None,
                   created_at: str | None = None) -> RunManifest:
    """Assemble the run-level record from a merged snapshot.

    ``snapshot`` is the fold of every shard's telemetry plus the
    parent's own spans (store appends); ``caches`` carries the
    parent-side warm-vs-cold cache statistics (see
    :func:`repro.caches.cache_stats`).
    """
    from repro.backend import active_backend  # late: keep import light

    rate = executed / elapsed_s if elapsed_s > 0 else 0.0
    return RunManifest(
        created_at=created_at if created_at is not None
        else _utc_now_iso(),
        fleet={
            "scenarios": int(scenarios),
            "executed": int(executed),
            "resumed": int(skipped),
            "shards": int(shards),
            "fleet_hash": fleet_content_hash(spec_hashes),
            "engines": dict(engines),
        },
        config={
            "workers": int(workers),
            "batch_size": int(batch_size),
            "chunk_coarse": int(chunk_coarse),
            "batch_traces": bool(batch_traces),
            "workspace": workspace,
            "offline_gap": bool(offline_gap),
            "backend": active_backend().name,
        },
        timing={
            "elapsed_s": float(elapsed_s),
            "scenarios_per_s": float(rate),
        },
        stages=snapshot.spans,
        counters=snapshot.counters,
        gauges=snapshot.gauges,
        process=snapshot.process,
        caches=dict(caches or {}),
    )


def stage_split(stages: Mapping[str, Mapping], top: int = 3) -> str:
    """One-line ``name share%`` summary of the largest top-level
    stages (for progress lines and run summaries)."""
    base = _share_base(stages)
    if base <= 0:
        return ""
    rows = sorted(
        ((name, stats["total_s"]) for name, stats in stages.items()
         if name not in _NESTED_UNDER and name != "shard"),
        key=lambda row: -row[1])
    return " | ".join(f"{name} {100 * total / base:.0f}%"
                      for name, total in rows[:top])


def _share_base(stages: Mapping[str, Mapping]) -> float:
    """Denominator for stage shares: total per-shard time when the
    ``shard`` span exists, else the sum of top-level stages."""
    shard = stages.get("shard")
    if shard is not None and shard.get("total_s", 0) > 0:
        return float(shard["total_s"])
    return sum(float(stats.get("total_s", 0.0))
               for name, stats in stages.items()
               if name not in _NESTED_UNDER)


def _stage_rows(stages: Mapping[str, Mapping]) -> list[tuple[str, dict]]:
    """Breakdown order: top-level stages by descending total, each
    followed by its nested spans (indented)."""
    children: dict[str, list[str]] = {}
    orphans = []
    for name, parent in _NESTED_UNDER.items():
        if name not in stages:
            continue
        if parent in stages:
            children.setdefault(parent, []).append(name)
        else:
            orphans.append(name)  # parent span absent: show top-level
    top = sorted((name for name in stages
                  if (name not in _NESTED_UNDER or name in orphans)
                  and name != "shard"),
                 key=lambda name: -float(stages[name]["total_s"]))
    rows: list[tuple[str, dict]] = []

    def emit(name: str, depth: int) -> None:
        rows.append(("  " * depth + name, dict(stages[name])))
        for child in sorted(children.get(name, []),
                            key=lambda c: -float(stages[c]["total_s"])):
            emit(child, depth + 1)

    for name in top:
        emit(name, 0)
    return rows


def render_manifest(manifest: RunManifest) -> str:
    """Fixed-width table: header facts, then the stage breakdown."""
    fleet, config, timing = manifest.fleet, manifest.config, \
        manifest.timing
    lines = [
        f"run {manifest.created_at} — "
        f"{fleet.get('scenarios', '?')} scenarios "
        f"({fleet.get('resumed', 0)} resumed), "
        f"{fleet.get('shards', '?')} shards, "
        f"workers={config.get('workers', '?')}, "
        f"backend={config.get('backend', '?')}",
        f"  elapsed {timing.get('elapsed_s', 0.0):.2f} s "
        f"({timing.get('scenarios_per_s', 0.0):.0f} scenarios/s), "
        f"batch_size={config.get('batch_size', '?')}, "
        f"chunk_coarse={config.get('chunk_coarse', '?')}"
        + (", offline_gap" if config.get("offline_gap") else ""),
    ]
    stages = manifest.stages
    if stages:
        base = _share_base(stages)
        lines.append(f"  {'stage':<22} {'total_s':>9} {'share':>7} "
                     f"{'count':>8} {'avg_ms':>9} {'max_ms':>9}")
        for label, stats in _stage_rows(stages):
            total = float(stats.get("total_s", 0.0))
            count = int(stats.get("count", 0))
            avg_ms = 1000 * total / count if count else 0.0
            share = 100 * total / base if base > 0 else 0.0
            lines.append(
                f"  {label:<22} {total:>9.3f} {share:>6.1f}% "
                f"{count:>8d} {avg_ms:>9.3f} "
                f"{1000 * float(stats.get('max_s', 0.0)):>9.3f}")
    else:
        lines.append("  (no stage spans recorded)")
    counters = manifest.counters
    if counters:
        parts = ", ".join(f"{name}={counters[name]:g}"
                          for name in sorted(counters))
        lines.append(f"  counters: {parts}")
    process = manifest.process
    if process.get("peak_rss_kb"):
        lines.append(f"  peak RSS {process['peak_rss_kb'] / 1024:.1f} "
                     f"MiB (max across processes)")
    return "\n".join(lines)
