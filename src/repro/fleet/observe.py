"""Streamed observation layer: noise and sensor-fault models.

The paper's robustness experiment (Fig. 9) feeds controllers *observed*
traces while the physical system evolves on the truth.  The in-memory
path does this with :class:`~repro.traces.noise.NoisyTraceView`; this
module brings the same separation to the streamed fleet engine, where
full horizons never exist in memory.

An :class:`ObservationSpec` describes one scenario's observation model
(which perturbation, which seed, the market price cap).  Opening it
yields a :class:`ScenarioObserver`: a *chunked noise cursor* holding one
dedicated RNG substream per trace series (``observe:<series>`` under
the scenario's observation seed, via :func:`repro.rng.make_rng`) plus
per-series carry state, so perturbing the horizon window by window is
**bit-identical for every chunk size** — the same draw discipline the
trace streams follow (:mod:`repro.fleet.stream`).  The in-memory
reference is :meth:`ObservationSpec.observed_traces`, which applies the
same observer over the full horizon as a single chunk; equivalence
tests pin streamed == reference across chunkings.

Models
------

``uniform``
    The paper's ±``rel_error`` multiplicative error
    (:func:`repro.traces.noise.uniform_perturb` — shared arithmetic
    with :func:`~repro.traces.noise.uniform_observation_noise`).
``dropout``
    Each slot's reading is lost independently with probability
    ``rate``; the controller *holds the last good observation* (the
    sensor's first sample always latches, so leading dropouts report
    the power-on value) instead of crashing — graceful degradation.
``stuck``
    With probability ``rate`` per decision slot the sensor freezes at
    its previously reported value for ``duration`` slots.
``bias_drift``
    A Gaussian random walk on the relative calibration bias:
    ``observed = true · (1 + walk)``, floored at zero.
``delay``
    Readings arrive ``slots`` fine slots late (power-on latch before
    the first reading lands).

Every model keeps observed values finite and non-negative; observed
prices are additionally clipped at the market cap (same second-step
order as :func:`~repro.traces.noise.uniform_observation_noise`, so the
uniform model stays bit-compatible with the Fig. 9 reference).  The
streamed engine still scans observed chunks for NaN/Inf — corruption
(e.g. injected via the ``observe`` fault site) raises
:class:`~repro.exceptions.ObservationCorruptionError` naming the view
and series, and quarantines through the fleet runner like any trace
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import make_rng, substream_rngs_batch
from repro.traces.base import TraceSet
from repro.traces.noise import uniform_perturb

#: Observed series, in the order one scenario's substreams are minted.
#: ``price_lt`` perturbs the *fine* ``price_lt_hourly`` series; the
#: engine derives observed coarse prices from it with the same
#: reshape-mean the true path uses.
OBSERVE_SERIES = ("demand_ds", "demand_dt", "renewable", "price_rt",
                  "price_lt")

#: Series that get the market-cap clip as a second step.
_PRICE_SERIES = ("price_rt", "price_lt")


class ObservationModel:
    """One perturbation discipline applied independently per series.

    Subclasses are frozen parameter dataclasses; all mutable cursor
    state lives in the per-series ``state`` dict threaded through
    :meth:`perturb_chunk`, so one model instance can back any number
    of concurrently open observers.
    """

    #: Registry key; also the ``model`` field of observation metadata.
    kind = ""

    def init_state(self) -> dict | None:
        """Fresh carry state for one series at horizon start."""
        return None

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        """The observed window for one series' true window.

        Must consume ``rng`` at a per-slot rate independent of the
        chunking and fold carry sequentially through ``state``, so the
        concatenation of sequential windows is bit-identical for every
        chunk size.
        """
        raise NotImplementedError

    def params(self) -> dict:
        """The model's parameters (JSON-serializable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class UniformNoise(ObservationModel):
    """The paper's uniform ±``rel_error`` multiplicative error."""

    rel_error: float

    kind = "uniform"

    def __post_init__(self) -> None:
        if not 0 <= self.rel_error < 1:
            raise ConfigurationError(
                f"relative error must be in [0, 1), got {self.rel_error}")

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        return uniform_perturb(true, self.rel_error, rng)


@dataclass(frozen=True)
class SensorDropout(ObservationModel):
    """Independent per-slot reading loss with last-good hold.

    A dropped slot reports the most recent good reading; the sensor's
    first sample always latches (leading dropouts report the power-on
    value ``true[0]``), which keeps the fallback chunk-invariant.
    """

    rate: float

    kind = "dropout"

    def __post_init__(self) -> None:
        if not 0 <= self.rate < 1:
            raise ConfigurationError(
                f"dropout rate must be in [0, 1), got {self.rate}")

    def init_state(self) -> dict:
        return {"last": None}

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        n = true.size
        lost = rng.random(n) < self.rate
        last = state["last"]
        if last is None:
            last = float(true[0])
        # Forward-fill the index of the latest good slot; slots before
        # any good reading fall back to the held value.
        index = np.where(lost, -1, np.arange(n))
        np.maximum.accumulate(index, out=index)
        observed = np.where(index >= 0, true[np.maximum(index, 0)], last)
        state["last"] = float(observed[-1])
        return observed


@dataclass(frozen=True)
class StuckSensor(ObservationModel):
    """Sensor freezes at its previous reported value for a while.

    Each free slot sticks independently with probability ``rate``; a
    stick repeats the previously *reported* value (power-on latch:
    the first sample, if the sensor sticks immediately) for
    ``duration`` slots including the triggering one.  One uniform
    draw is consumed per slot regardless of the stick state, so the
    stream splits identically across chunk boundaries.
    """

    rate: float
    duration: int

    kind = "stuck"

    def __post_init__(self) -> None:
        if not 0 <= self.rate < 1:
            raise ConfigurationError(
                f"stick rate must be in [0, 1), got {self.rate}")
        if int(self.duration) != self.duration or self.duration < 1:
            raise ConfigurationError(
                f"stick duration must be an integer >= 1, "
                f"got {self.duration}")

    def init_state(self) -> dict:
        return {"left": 0, "value": 0.0, "prev": None}

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        draws = rng.random(true.size)
        observed = np.empty(true.size)
        left = state["left"]
        value = state["value"]
        prev = state["prev"]
        duration = int(self.duration)
        for i in range(true.size):
            if left > 0:
                observed[i] = value
                left -= 1
            elif draws[i] < self.rate:
                value = float(true[i]) if prev is None else prev
                observed[i] = value
                left = duration - 1
            else:
                observed[i] = true[i]
            prev = float(observed[i])
        state["left"] = left
        state["value"] = value
        state["prev"] = prev
        return observed


@dataclass(frozen=True)
class BiasDrift(ObservationModel):
    """Gaussian random walk on the relative calibration bias.

    ``observed = true · (1 + walk)`` floored at zero, where ``walk``
    accumulates i.i.d. ``Normal(0, sigma)`` steps.  The walk is folded
    left-to-right from the carried bias with ``np.add.accumulate`` —
    float addition is not associative, so a ``carry + cumsum`` form
    would *not* be bit-identical across chunkings.
    """

    sigma: float

    kind = "bias_drift"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(
                f"drift sigma must be >= 0, got {self.sigma}")

    def init_state(self) -> dict:
        return {"bias": 0.0}

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        steps = rng.normal(0.0, self.sigma, size=true.size)
        walk = np.add.accumulate(
            np.concatenate(([state["bias"]], steps)))[1:]
        state["bias"] = float(walk[-1])
        return np.clip(true * (1.0 + walk), 0.0, None)


@dataclass(frozen=True)
class DelayedReport(ObservationModel):
    """Readings arrive ``slots`` fine slots late.

    ``observed[t] = true[t - slots]``; before the first reading lands
    the sensor reports its power-on latch ``true[0]``.  Pure ring
    buffer — consumes no randomness.
    """

    slots: int

    kind = "delay"

    def __post_init__(self) -> None:
        if int(self.slots) != self.slots or self.slots < 0:
            raise ConfigurationError(
                f"reporting delay must be an integer >= 0, "
                f"got {self.slots}")

    def init_state(self) -> dict:
        return {"buffer": None}

    def perturb_chunk(self, true: np.ndarray, rng: np.random.Generator,
                      state: dict | None) -> np.ndarray:
        delay = int(self.slots)
        if delay == 0:
            return true
        buffer = state["buffer"]
        if buffer is None:
            buffer = np.full(delay, float(true[0]))
        extended = np.concatenate([buffer, true])
        state["buffer"] = extended[true.size:true.size + delay]
        return extended[:true.size]


#: Registry of observation-model kinds (spec ``observation.kind``).
OBSERVATION_KINDS: dict[str, type] = {
    UniformNoise.kind: UniformNoise,
    SensorDropout.kind: SensorDropout,
    StuckSensor.kind: StuckSensor,
    BiasDrift.kind: BiasDrift,
    DelayedReport.kind: DelayedReport,
}


@dataclass(frozen=True)
class ObservationSpec:
    """One scenario's observation model, seed and price cap.

    Immutable description (like a :class:`~repro.fleet.stream
    .TraceStream`); :meth:`open` mints a fresh chunked observer, so one
    spec can be replayed any number of times with identical output.
    """

    model: ObservationModel
    seed: int
    price_cap: float | None = None

    @property
    def rel_error(self) -> float | None:
        """The uniform model's relative error (``None`` otherwise)."""
        value = getattr(self.model, "rel_error", None)
        return None if value is None else float(value)

    def describe(self) -> dict:
        """Observation metadata for fleet records and trace meta."""
        out = {"model": self.model.kind, "seed": int(self.seed)}
        out.update(self.model.params())
        return out

    def open(self) -> "ScenarioObserver":
        """A fresh observer with carry state at horizon start."""
        return ScenarioObserver(self)

    def observed_traces(self, traces: TraceSet) -> TraceSet:
        """The in-memory reference: the full horizon as one chunk.

        By the chunk-size invariance this equals the streamed
        observer's concatenated windows for *any* chunking — it is
        what the equivalence harness feeds
        :class:`~repro.traces.noise.NoisyTraceView` /
        ``RunSpec(observed=...)`` to pin the streamed path against.
        """
        observer = self.open()
        meta = dict(traces.meta)
        meta["observation"] = self.describe()
        if self.rel_error is not None:
            meta["observation_rel_error"] = self.rel_error
        return traces.replace(
            demand_ds=observer.observe_series("demand_ds",
                                              traces.demand_ds),
            demand_dt=observer.observe_series("demand_dt",
                                              traces.demand_dt),
            renewable=observer.observe_series("renewable",
                                              traces.renewable),
            price_rt=observer.observe_series("price_rt", traces.price_rt),
            price_lt_hourly=observer.observe_series(
                "price_lt", traces.price_lt_hourly),
            meta=meta,
        )


def observation_from_mapping(mapping: Mapping[str, object],
                             default_seed: int,
                             price_cap: float | None = None
                             ) -> ObservationSpec:
    """Build an :class:`ObservationSpec` from a serialized mapping.

    ``mapping`` is the ``ScenarioSpec.observation`` axis value:
    ``{"kind": <registry key>, <model params>...}`` plus an optional
    ``"seed"`` overriding ``default_seed`` (the scenario seed, so seed
    replicas draw independent noise by default).
    """
    data = dict(mapping)
    kind = data.pop("kind", None)
    if kind not in OBSERVATION_KINDS:
        raise ConfigurationError(
            f"unknown observation kind {kind!r}; expected one of "
            f"{sorted(OBSERVATION_KINDS)}")
    seed = data.pop("seed", None)
    seed = int(default_seed if seed is None else seed)
    cls = OBSERVATION_KINDS[kind]
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {kind!r} observation parameters {unknown}; "
            f"expected {sorted(allowed)}")
    missing = sorted(allowed - set(data))
    if missing:
        raise ConfigurationError(
            f"observation kind {kind!r} missing parameters {missing}")
    return ObservationSpec(model=cls(**data), seed=seed,
                           price_cap=price_cap)


class ScenarioObserver:
    """Chunked noise cursor for one scenario.

    Holds one dedicated generator per observed series
    (``observe:<series>`` substreams of the observation seed) plus the
    model's per-series carry state; windows must be fed strictly in
    order, like every stream cursor.
    """

    def __init__(self, spec: ObservationSpec,
                 rngs: Mapping[str, np.random.Generator] | None = None):
        self.spec = spec
        # ``rngs`` lets BatchObserver seed a whole batch's substreams
        # in one vectorized pass; the streams are bit-identical to the
        # per-call ``make_rng`` default.
        self._rngs = (dict(rngs) if rngs is not None else
                      {name: make_rng(spec.seed, f"observe:{name}")
                       for name in OBSERVE_SERIES})
        self._states = {name: spec.model.init_state()
                        for name in OBSERVE_SERIES}

    def observe_series(self, name: str, true: np.ndarray) -> np.ndarray:
        """The observed window for one series' next true window."""
        observed = self.spec.model.perturb_chunk(
            true, self._rngs[name], self._states[name])
        if name in _PRICE_SERIES and self.spec.price_cap is not None:
            observed = np.clip(observed, 0.0, self.spec.price_cap)
        return observed


class BatchObserver:
    """Per-scenario observers over one streamed batch.

    Rows without an observation model pass the truth through by
    *aliasing* (no copy, no draws), so a batch with observation
    disabled everywhere is bit-identical to — and as cheap as — the
    pre-observation engine.
    """

    def __init__(self, observations: Sequence[ObservationSpec | None]):
        active = [(row, spec) for row, spec in enumerate(observations)
                  if spec is not None]
        # One vectorized seeding pass over every (scenario, series)
        # substream instead of per-generator hashing.
        batched = substream_rngs_batch(
            [spec.seed for _, spec in active],
            [f"observe:{name}" for name in OBSERVE_SERIES])
        self.any_active = bool(active)
        self._observers: list[ScenarioObserver | None] = \
            [None] * len(observations)
        # Homogeneous-uniform fast path: robustness sweeps (and the
        # armed-but-quiet overhead bench) wear the uniform model on
        # *every* row, where per-row python dispatch dominates the
        # layer's cost.  When the whole batch qualifies, keep one draw
        # per (row, series, chunk) — the stream contract — but fill a
        # factor matrix in place (``Generator.random(out=row)``) and
        # run the perturb arithmetic as vectorized passes.  numpy's
        # ``uniform(low, high)`` computes ``low + (high-low)·u`` per
        # element; the staged ``u·range + low`` below performs the
        # same IEEE ops in the same order, so output stays
        # bit-identical to the row-at-a-time reference (pinned by the
        # equivalence suite).
        self._uniform = None
        if active and len(active) == len(observations) and all(
                isinstance(spec.model, UniformNoise)
                for _, spec in active):
            self._uniform = {name: batched[f"observe:{name}"]
                             for name in OBSERVE_SERIES}
            error = np.array([[spec.model.rel_error]
                              for _, spec in active])
            self._low = 1.0 - error
            self._range = (1.0 + error) - self._low
            self._caps = np.array(
                [[np.inf if spec.price_cap is None else spec.price_cap]
                 for _, spec in active])
            return
        for position, (row, spec) in enumerate(active):
            rngs = {name: batched[f"observe:{name}"][position]
                    for name in OBSERVE_SERIES}
            self._observers[row] = ScenarioObserver(spec, rngs=rngs)

    def observe_matrix(self, name: str, true: np.ndarray) -> np.ndarray:
        """Observed ``(B, n)`` block for one series' true block.

        Returns ``true`` itself (alias) when no row has a model.
        """
        if self._uniform is not None:
            factors = np.empty_like(true)
            for row, rng in enumerate(self._uniform[name]):
                rng.random(out=factors[row])
            factors *= self._range
            factors += self._low
            np.multiply(true, factors, out=factors)
            observed = np.clip(factors, 0.0, None, out=factors)
            if name in _PRICE_SERIES:
                # Rows with no market cap clip against +inf, which the
                # scalar path's skipped second clip also leaves as-is
                # (values are >= 0 after the floor, so the repeated
                # lower clip is bitwise idempotent).
                np.clip(observed, 0.0, self._caps, out=observed)
            return observed
        observed = None
        for row, observer in enumerate(self._observers):
            if observer is None:
                continue
            if observed is None:
                observed = true.copy()
            observed[row] = observer.observe_series(name, true[row])
        return true if observed is None else observed
