"""Synthetic wind production (optional second renewable source).

The paper's datacenter integrates "solar and wind energies"; its traces
are solar-only, but the system model treats ``r(τ)`` as one aggregate
renewable series.  This module provides a wind substrate so examples and
extension experiments can mix sources:

1. **wind speed** — an Ornstein-Uhlenbeck process in log-space whose
   stationary distribution approximates the Weibull shape typical of
   hourly site winds, with a mild diurnal modulation;
2. **turbine power curve** — the standard piecewise curve: zero below
   cut-in, cubic between cut-in and rated speed, flat at rated power,
   zero above cut-out (storm shutdown).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class WindModel:
    """Parameters of the synthetic wind plant.

    Attributes
    ----------
    capacity_mw:
        Nameplate capacity at rated wind speed.
    mean_speed / speed_volatility / reversion:
        Stationary mean (m/s), log-space volatility and mean-reversion
        rate of the OU wind-speed process.
    cut_in / rated / cut_out:
        Power-curve speeds in m/s.
    diurnal_amplitude:
        Relative amplitude of the afternoon wind pickup.
    """

    capacity_mw: float = 1.0
    mean_speed: float = 7.5
    speed_volatility: float = 0.35
    reversion: float = 0.25
    cut_in: float = 3.0
    rated: float = 12.0
    cut_out: float = 25.0
    diurnal_amplitude: float = 0.15
    slot_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_mw < 0:
            raise ConfigurationError(
                f"wind capacity must be >= 0, got {self.capacity_mw}")
        if not 0 < self.cut_in < self.rated < self.cut_out:
            raise ConfigurationError(
                f"need 0 < cut_in < rated < cut_out, got "
                f"({self.cut_in}, {self.rated}, {self.cut_out})")
        if self.mean_speed <= 0:
            raise ConfigurationError(
                f"mean wind speed must be > 0, got {self.mean_speed}")
        if not 0 < self.reversion <= 1:
            raise ConfigurationError(
                f"reversion must be in (0, 1], got {self.reversion}")
        if self.speed_volatility < 0:
            raise ConfigurationError(
                f"volatility must be >= 0, got {self.speed_volatility}")
        if self.slot_hours <= 0:
            raise ConfigurationError(
                f"slot_hours must be > 0, got {self.slot_hours}")


class WindTraceGenerator:
    """Generates hourly wind energy series from a :class:`WindModel`."""

    def __init__(self, model: WindModel | None = None):
        self.model = model or WindModel()

    def power_from_speed(self, speed: float) -> float:
        """Turbine power (MW) at a given hub-height wind speed (m/s)."""
        model = self.model
        if speed < model.cut_in or speed >= model.cut_out:
            return 0.0
        if speed >= model.rated:
            return model.capacity_mw
        span = model.rated ** 3 - model.cut_in ** 3
        fraction = (speed ** 3 - model.cut_in ** 3) / span
        return model.capacity_mw * fraction

    def speed_path(self, n_slots: int,
                   rng: np.random.Generator) -> np.ndarray:
        """Sample the OU-in-log-space wind-speed path (m/s)."""
        model = self.model
        log_mean = math.log(model.mean_speed)
        log_speed = log_mean
        speeds = np.empty(n_slots)
        innovation_scale = (model.speed_volatility
                           * math.sqrt(2.0 * model.reversion
                                       - model.reversion ** 2))
        for slot in range(n_slots):
            hour = (slot * model.slot_hours) % 24.0
            diurnal = 1.0 + model.diurnal_amplitude * math.sin(
                2.0 * math.pi * (hour - 9.0) / 24.0)
            log_speed += (model.reversion * (log_mean - log_speed)
                          + innovation_scale * rng.standard_normal())
            speeds[slot] = math.exp(log_speed) * diurnal
        return speeds

    def generate(self, n_slots: int,
                 rng: np.random.Generator) -> np.ndarray:
        """Generate the wind energy series in MWh per slot."""
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        speeds = self.speed_path(n_slots, rng)
        energy = np.array([self.power_from_speed(s) for s in speeds])
        return energy * self.model.slot_hours
