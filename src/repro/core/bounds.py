"""Analytical constants of the paper's performance theory.

Implements every constant appearing in Theorem 1 (drift-plus-penalty
bound), Corollary 1 (loosened bound under the current-statistics
approximation), Theorem 2 (queue/battery/delay/cost bounds), Theorem 3
(robustness) and Corollary 2 (scalability):

    H1   = Sdtmax² + ½(Ddtmax² + Bcmax²ηc² + Bdmax²ηd² + ε²)
    H2   = H1 + T(T−1)Bcmax²ηc² + T(T−1)ε²
    H3   = H2 + T·θmax(2Sdtmax + Ddtmax + Bcmax·ηc + Bdmax·ηd + ε)
    Vmax = T(Bmax − Bmin − Bdmax·ηd − Bcmax·ηc − Ddtmax − ε)/Pmax
    Qmax = V·Pmax/T + Ddtmax      Ymax = V·Pmax/T + ε
    Umax = V·Pmax/T + Ddtmax + ε
    λmax = ⌈(2V·Pmax/T + Ddtmax + ε)/ε⌉
    cost gap ≤ H2/V   (H3/V with estimation error)

Two variants are provided because the paper's Algorithm 1 and its
Theorem 2 disagree on a factor of ``T``: P4/P5 compare queue sums
against ``V·plt`` (no ``1/T``), while the theorem's bounds carry
``V·Pmax/T``.  ``BoundVariant.PAPER`` reports the printed formulas;
``BoundVariant.IMPLEMENTATION`` replaces ``Pmax/T → Pmax`` so the
bounds match the algorithm as actually specified (and as implemented
here) — the property-based tests check the implementation variant
against simulations.

Prices here are *normalized* controller units (see
``SmartDPSSConfig``-driven normalization in :mod:`repro.core.smartdpss`);
pass the normalized price cap for consistent magnitudes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.config.system import SystemConfig


class BoundVariant(str, enum.Enum):
    """Which reading of the theorem constants to report."""

    PAPER = "paper"                    # V·Pmax/T thresholds, as printed
    IMPLEMENTATION = "implementation"  # V·Pmax thresholds, as coded


@dataclass(frozen=True)
class TheoreticalBounds:
    """All constants from Theorems 1-3 for one configuration."""

    h1: float
    h2: float
    h3: float
    v_max: float
    q_max: float
    y_max: float
    u_max: float
    lambda_max: int
    cost_gap: float
    variant: BoundVariant

    @property
    def theory_applies(self) -> bool:
        """Whether the Theorem 2 precondition ``0 < V ≤ Vmax`` can hold.

        The paper's own evaluation battery violates it (the safety
        margins exceed ``Bmax``); experiments then rely on the
        engine's physical clamps instead of the Lyapunov battery
        argument.
        """
        return self.v_max > 0


def compute_bounds(system: SystemConfig,
                   v: float,
                   epsilon: float,
                   price_cap: float,
                   theta_max: float = 0.0,
                   variant: BoundVariant = BoundVariant.IMPLEMENTATION,
                   ) -> TheoreticalBounds:
    """Evaluate every theorem constant for one configuration.

    Parameters
    ----------
    system:
        Physical system (battery caps, demand caps, ``T``).
    v / epsilon:
        Controller parameters.
    price_cap:
        ``Pmax`` in the controller's (normalized) price units.
    theta_max:
        Queue-estimation error bound of Theorem 3 (0 → ``H3 = H2``).
    variant:
        Paper-literal or implementation-consistent (see module doc).
    """
    if v <= 0:
        raise ValueError(f"V must be > 0, got {v}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if price_cap <= 0:
        raise ValueError(f"price cap must be > 0, got {price_cap}")
    if theta_max < 0:
        raise ValueError(f"theta_max must be >= 0, got {theta_max}")

    t_slots = system.fine_slots_per_coarse
    charge_sq = (system.b_charge_max * system.eta_c) ** 2
    discharge_sq = (system.b_discharge_max * system.eta_d) ** 2

    h1 = (system.s_dt_max ** 2
          + 0.5 * (system.d_dt_max ** 2 + charge_sq + discharge_sq
                   + epsilon ** 2))
    h2 = (h1 + t_slots * (t_slots - 1) * charge_sq
          + t_slots * (t_slots - 1) * epsilon ** 2)
    h3 = h2 + t_slots * theta_max * (
        2.0 * system.s_dt_max + system.d_dt_max
        + system.b_charge_max * system.eta_c
        + system.b_discharge_max * system.eta_d + epsilon)

    v_max = t_slots * (system.b_max - system.b_min
                       - system.b_discharge_max * system.eta_d
                       - system.b_charge_max * system.eta_c
                       - system.d_dt_max - epsilon) / price_cap

    if variant is BoundVariant.PAPER:
        threshold = v * price_cap / t_slots
        q_growth = system.d_dt_max
        y_growth = epsilon
    else:
        # The algorithm as specified compares Q + Y against V·plt (no
        # 1/T), and its Lyapunov weights are frozen for a whole coarse
        # window, during which the queues can grow unchecked — hence
        # the T-scaled growth terms.
        threshold = v * price_cap
        q_growth = t_slots * system.d_dt_max
        y_growth = t_slots * epsilon
    q_max = threshold + q_growth
    y_max = threshold + y_growth
    u_max = threshold + q_growth + y_growth
    lambda_max = math.ceil((2.0 * threshold + q_growth + y_growth)
                           / epsilon)
    cost_gap = (h3 if theta_max > 0 else h2) / v

    return TheoreticalBounds(h1=h1, h2=h2, h3=h3, v_max=v_max,
                             q_max=q_max, y_max=y_max, u_max=u_max,
                             lambda_max=lambda_max, cost_gap=cost_gap,
                             variant=variant)


def scaled_bounds(bounds: TheoreticalBounds, beta: float,
                  alpha: float, theta_max: float,
                  system: SystemConfig,
                  epsilon: float) -> dict[str, float]:
    """Corollary 2: constants under ``β``-fold system expansion.

    ``H1(β) = β·H1``, ``H2(β) = β·H2`` and
    ``H3(β) = β·H2 + T·β^α·θmax·(2Sdtmax + Ddtmax + Bcmax·ηc +
    Bdmax·ηd + ε)``, with ``α ∈ [1/2, 1]`` the workload-similarity /
    renewable-correlation exponent.
    """
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    if not 0.5 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [1/2, 1], got {alpha}")
    t_slots = system.fine_slots_per_coarse
    robustness_term = t_slots * (beta ** alpha) * theta_max * (
        2.0 * system.s_dt_max + system.d_dt_max
        + system.b_charge_max * system.eta_c
        + system.b_discharge_max * system.eta_d + epsilon)
    return {
        "h1": beta * bounds.h1,
        "h2": beta * bounds.h2,
        "h3": beta * bounds.h2 + robustness_term,
    }
