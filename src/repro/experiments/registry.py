"""Experiment registry: one entry per paper figure plus ablations.

Maps stable experiment ids to ``(runner, renderer)`` pairs so the
benchmark harness, the examples and ad-hoc scripts all regenerate
figures through one call:

    >>> from repro.experiments import run_experiment
    >>> print(run_experiment("fig6_v"))            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ablations,
    fig5_traces,
    fig6_t_sweep,
    fig6_v_sweep,
    fig7_factors,
    fig8_penetration,
    fig9_robustness,
    fig10_scaling,
)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: how to run it and how to print it."""

    experiment_id: str
    description: str
    run: Callable[..., object]
    render: Callable[[object], str]


EXPERIMENTS: dict[str, Experiment] = {
    "fig5": Experiment(
        "fig5", "one-month traces (demand, solar, prices)",
        fig5_traces.run_fig5, fig5_traces.render),
    "fig6_v": Experiment(
        "fig6_v", "cost & delay vs V (Fig 6a,b)",
        fig6_v_sweep.run_fig6_v, fig6_v_sweep.render),
    "fig6_t": Experiment(
        "fig6_t", "cost & delay vs T (Fig 6c,d)",
        fig6_t_sweep.run_fig6_t, fig6_t_sweep.render),
    "fig7": Experiment(
        "fig7", "epsilon / battery / market factors (Fig 7)",
        fig7_factors.run_fig7, fig7_factors.render),
    "fig8": Experiment(
        "fig8", "renewable penetration & demand variation (Fig 8)",
        fig8_penetration.run_fig8, fig8_penetration.render),
    "fig9": Experiment(
        "fig9", "robustness to estimation errors (Fig 9)",
        fig9_robustness.run_fig9, fig9_robustness.render),
    "fig10": Experiment(
        "fig10", "scalability under expansion (Fig 10)",
        fig10_scaling.run_fig10, fig10_scaling.render),
    "ablations": Experiment(
        "ablations", "design-decision ablations (Abl-1..5)",
        ablations.run_ablations, ablations.render),
}


def run_experiment(experiment_id: str, **kwargs: object) -> str:
    """Run a registered experiment and return its printed form."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}")
    experiment = EXPERIMENTS[experiment_id]
    result = experiment.run(**kwargs)
    return experiment.render(result)
