"""Slot physics resolution and the two P5 objectives."""

import math

import pytest

from repro.config.control import ObjectiveMode
from repro.core.modes import (
    SlotState,
    objective_derived,
    objective_for,
    objective_paper,
    resolve_physics,
)


def make_state(**overrides) -> SlotState:
    defaults = dict(
        q_hat=2.0, y_hat=1.0, x_hat=-3.0,
        v=1.0, price_rt=5.0, battery_op_cost=0.01, waste_penalty=0.1,
        backlog=2.0, gbef_rate=1.0, renewable=0.2, demand_ds=1.0,
        charge_cap=0.4, discharge_cap=0.3, eta_c=0.8, eta_d=1.25,
        s_dt_max=2.0, grt_cap=1.0, battery_margin=0.0,
    )
    defaults.update(overrides)
    return SlotState(**defaults)


class TestResolvePhysics:
    def test_balanced_slot(self):
        # supply = 1.0 + 0 + 0.2 = 1.2; demand = 1.0 + 0.1·2 = 1.2.
        physics = resolve_physics(make_state(), grt=0.0, gamma=0.1)
        assert physics.sdt == pytest.approx(0.2)
        assert physics.charge == 0.0
        assert physics.discharge == 0.0
        assert physics.waste == 0.0
        assert physics.unserved == 0.0

    def test_surplus_charges_then_wastes(self):
        physics = resolve_physics(make_state(), grt=1.0, gamma=0.0)
        # net = 2.2 - 1.0 = 1.2; charge 0.4, waste 0.8.
        assert physics.charge == pytest.approx(0.4)
        assert physics.waste == pytest.approx(0.8)
        assert physics.battery_active

    def test_deficit_discharges_then_unserved(self):
        state = make_state(demand_ds=2.0, gbef_rate=0.0,
                           renewable=0.0)
        physics = resolve_physics(state, grt=1.0, gamma=0.0)
        # net = 1.0 - 2.0 = -1.0; discharge 0.3, unserved 0.7.
        assert physics.discharge == pytest.approx(0.3)
        assert physics.unserved == pytest.approx(0.7)

    def test_sdt_capped_by_sdtmax(self):
        state = make_state(backlog=10.0, s_dt_max=2.0)
        physics = resolve_physics(state, grt=0.0, gamma=1.0)
        assert physics.sdt == pytest.approx(2.0)

    def test_charge_discharge_exclusive(self):
        for grt in (0.0, 0.5, 1.0):
            for gamma in (0.0, 0.5, 1.0):
                physics = resolve_physics(make_state(), grt, gamma)
                assert physics.charge == 0.0 or physics.discharge == 0.0


class TestObjectiveDerived:
    def test_infeasible_is_infinite(self):
        state = make_state(demand_ds=5.0, gbef_rate=0.0,
                           renewable=0.0, discharge_cap=0.0)
        physics = resolve_physics(state, 0.0, 0.0)
        assert math.isinf(objective_derived(state, 0.0, 0.0, physics))

    def test_purchase_priced_at_v_p(self):
        state = make_state(q_hat=0.0, y_hat=0.0, x_hat=0.0,
                           charge_cap=0.0, waste_penalty=0.0)
        physics = resolve_physics(state, 0.5, 0.0)
        value = objective_derived(state, 0.5, 0.0, physics)
        # grt of 0.5 at V·p = 5 plus nothing else (waste free here).
        assert value == pytest.approx(0.5 * 5.0)

    def test_service_earns_queue_drift(self):
        state = make_state(charge_cap=0.0, waste_penalty=0.0)
        idle = resolve_physics(state, 0.0, 0.0)
        serving = resolve_physics(state, 0.0, 0.1)
        gain = (objective_derived(state, 0.0, 0.1, serving)
                - objective_derived(state, 0.0, 0.0, idle))
        # Serving 0.2 MWh earns -(Q+Y)·0.2 = -0.6 (no battery here).
        assert gain == pytest.approx(-(2.0 + 1.0) * 0.2)

    def test_battery_margin_penalizes_trades(self):
        state_free = make_state(battery_margin=0.0)
        state_margin = make_state(battery_margin=0.5)
        physics = resolve_physics(state_free, 1.0, 0.0)  # charges 0.4
        free = objective_derived(state_free, 1.0, 0.0, physics)
        priced = objective_derived(state_margin, 1.0, 0.0, physics)
        assert priced - free == pytest.approx(0.5 * 0.4)

    def test_op_cost_applied_when_active(self):
        state = make_state(battery_op_cost=0.02)
        active = resolve_physics(state, 1.0, 0.0)
        assert active.battery_active
        with_cost = objective_derived(state, 1.0, 0.0, active)
        zero_cost_state = make_state(battery_op_cost=0.0)
        without = objective_derived(zero_cost_state, 1.0, 0.0, active)
        assert with_cost - without == pytest.approx(0.02)


class TestObjectivePaper:
    def test_published_terms(self):
        state = make_state(charge_cap=0.0, waste_penalty=0.0)
        physics = resolve_physics(state, 0.5, 0.1)
        value = objective_paper(state, 0.5, 0.1, physics)
        expected = (0.5 * (1.0 * 5.0 - 2.0 - 1.0)          # grt term
                    + 0.1 * (2.0 ** 2 - 2.0 * 1.0)          # γ term
                    + (2.0 + (-3.0) + 1.0)
                    * (physics.charge - physics.discharge))
        assert value == pytest.approx(expected)

    def test_infeasible_is_infinite(self):
        state = make_state(demand_ds=5.0, gbef_rate=0.0,
                           renewable=0.0, discharge_cap=0.0)
        physics = resolve_physics(state, 0.0, 0.0)
        assert math.isinf(objective_paper(state, 0.0, 0.0, physics))


class TestObjectiveFor:
    def test_dispatch(self):
        assert objective_for(ObjectiveMode.PAPER) is objective_paper
        assert objective_for(ObjectiveMode.DERIVED) is objective_derived
