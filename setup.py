"""Package metadata and optional-dependency extras.

The default install is **NumPy-only** by policy: importing ``repro``
never touches CuPy or JAX, and every optional-backend code path is
lazily imported and cleanly skipped when the library is absent (see
``repro/backend/__init__.py``).  The extras exist so accelerator users
can opt in:

* ``pip install repro[cupy]`` — CuPy backend (pick the wheel matching
  your CUDA toolkit if the generic one does not resolve);
* ``pip install repro[jax]`` — JAX backend (pure kernels only; the
  in-place slot workspaces need a mutable array namespace).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("SmartDPSS reproduction: cost-minimizing multi-source "
                 "datacenter power supply (ICDCS 2013)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "cupy": ["cupy>=12"],
        "jax": ["jax>=0.4"],
        "test": ["pytest>=7", "hypothesis>=6"],
        # Static-analysis toolchain: `make lint` needs nothing beyond
        # the stdlib (repro.lint is self-contained); mypy backs the
        # optional `make typecheck` target, which skips when absent.
        "dev": ["mypy>=1.5"],
    },
)
