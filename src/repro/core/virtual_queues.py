"""Virtual queues of the Lyapunov construction (paper Sections III-A/B).

Two auxiliary state variables steer SmartDPSS:

* :class:`DelayAwareQueue` — the ε-persistent queue ``Y(t)`` (eq. 12).
  ``Y`` grows by ``ε`` in every slot that leaves backlog unserved and
  shrinks with service, so a *bounded* ``Y`` certifies the worst-case
  delay ``λmax = ⌈(Qmax + Ymax)/ε⌉`` (Lemma 2): backlogged demand
  cannot sit forever without either ``Y`` blowing past its bound or the
  demand being served.

* :class:`BatteryVirtualQueue` — the shifted battery tracker ``X(t) =
  b(t) − shift`` (eq. 14).  Weighting charge/discharge by ``X`` pushes
  the battery level toward the shift point; the paper's shift
  ``Umax + Bmin + Bdmax·ηd`` makes the Lyapunov argument close
  (Theorem 2 parts 1-2) **when** ``Vmax > 0``.  The paper's own
  evaluation battery (15 minutes of peak ≈ 0.5 MWh) violates that
  precondition — the required safety margins exceed the whole battery —
  so this class also provides the *operational* shift
  ``(Bmin + Bmax)/2 + V·p̄`` (with ``p̄`` a reference price), which
  reduces to the same structure but centres the price-arbitrage band
  inside the observed price range.  DESIGN.md Section 2 records this
  deviation; tests verify the paper-literal variant on configurations
  where ``Vmax > 0`` actually holds.
"""

from __future__ import annotations

import enum
from repro.exceptions import (
    ConfigurationError,
    InfeasibleActionError,
    StateError,
)


class ShiftMode(str, enum.Enum):
    """How the battery virtual queue's shift point is chosen."""

    PAPER = "paper"          # Umax + Bmin + Bdmax·ηd  (eq. 14, Thm 2)
    OPERATIONAL = "operational"  # (Bmin + Bmax)/2 + V·reference price


class DelayAwareQueue:
    """The ε-persistent delay-aware virtual queue ``Y(t)`` (eq. 12).

    Update (driven by *realized* service):

        Y(t+1) = max{Y(t) − sdt(t) + ε·1{Q(t) > 0}, 0}.
    """

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = epsilon
        self._value = 0.0
        self._peak = 0.0

    @property
    def value(self) -> float:
        """Current ``Y(t)``."""
        return self._value

    @property
    def peak(self) -> float:
        """Largest ``Y`` observed this horizon (for bound checks)."""
        return self._peak

    def update(self, served_dt: float, had_backlog: bool) -> float:
        """Apply eq. (12) for one slot; returns the new ``Y``."""
        if served_dt < 0:
            raise InfeasibleActionError(f"service must be >= 0, got {served_dt}")
        growth = self.epsilon if had_backlog else 0.0
        self._value = max(self._value - served_dt + growth, 0.0)
        if self._value > self._peak:
            self._peak = self._value
        return self._value

    def reset(self) -> None:
        """Zero the queue for a fresh horizon."""
        self._value = 0.0
        self._peak = 0.0

    def state(self) -> dict:
        """Exact snapshot of the live state (for cross-engine sync)."""
        return {"value": self._value, "peak": self._peak}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot exactly.

        This is the only sanctioned way to write the queue's internal
        state from outside (the batch engine syncs through it), so the
        field set stays in one place.
        """
        value = float(state["value"])
        peak = float(state["peak"])
        if value < 0 or peak < 0:
            raise ConfigurationError(
                f"queue state must be >= 0, got value={value} "
                f"peak={peak}")
        self._value = value
        self._peak = peak

    def __repr__(self) -> str:
        return f"DelayAwareQueue(Y={self._value:.4f}, eps={self.epsilon})"


class BatteryVirtualQueue:
    """The shifted battery tracker ``X(t) = b(t) − shift`` (eq. 14).

    ``X`` is a deterministic function of the physical battery level, so
    rather than integrating eq. (15) separately (and risking drift from
    the true level), this class recomputes ``X`` from ``b(t)`` each
    slot.  The two are equivalent because eq. (15) applies the same
    increments as eq. (3).
    """

    def __init__(self, shift: float):
        self.shift = shift
        self._value: float | None = None
        self._min_seen: float | None = None
        self._max_seen: float | None = None

    @property
    def value(self) -> float:
        """Current ``X(t)`` (raises if never observed)."""
        if self._value is None:
            raise StateError("battery queue not yet observed")
        return self._value

    @property
    def extremes(self) -> tuple[float, float]:
        """(min, max) of ``X`` this horizon, for Theorem 2-(1) checks."""
        if self._min_seen is None or self._max_seen is None:
            raise StateError("battery queue not yet observed")
        return self._min_seen, self._max_seen

    def observe(self, battery_level: float) -> float:
        """Recompute ``X`` from the physical level; returns it."""
        self._value = battery_level - self.shift
        if self._min_seen is None or self._value < self._min_seen:
            self._min_seen = self._value
        if self._max_seen is None or self._value > self._max_seen:
            self._max_seen = self._value
        return self._value

    def retarget(self, shift: float) -> None:
        """Move the shift point (operational mode adapts it to prices)."""
        self.shift = shift

    def reset(self) -> None:
        """Clear observations for a fresh horizon (shift unchanged)."""
        self._value = None
        self._min_seen = None
        self._max_seen = None

    def state(self) -> dict:
        """Exact snapshot of the live state (for cross-engine sync).

        ``value`` / ``min_seen`` / ``max_seen`` are ``None`` while the
        queue has never been observed — :meth:`load_state` restores
        that never-observed condition faithfully.
        """
        return {"shift": self.shift, "value": self._value,
                "min_seen": self._min_seen, "max_seen": self._max_seen}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot exactly.

        The only sanctioned external write path for the queue's
        internals (the batch engine syncs through it).
        """
        observed = [state["value"], state["min_seen"], state["max_seen"]]
        if any(entry is None for entry in observed) \
                and not all(entry is None for entry in observed):
            raise ConfigurationError(
                f"value/min_seen/max_seen must be all set or all "
                f"None, got {state}")
        self.shift = float(state["shift"])
        self._value = None if state["value"] is None \
            else float(state["value"])
        self._min_seen = None if state["min_seen"] is None \
            else float(state["min_seen"])
        self._max_seen = None if state["max_seen"] is None \
            else float(state["max_seen"])

    def __repr__(self) -> str:
        current = "unset" if self._value is None else f"{self._value:.4f}"
        return f"BatteryVirtualQueue(X={current}, shift={self.shift:.4f})"


def paper_shift(u_max: float, b_min: float, b_discharge_max: float,
                eta_d: float) -> float:
    """The paper-literal shift ``Umax + Bmin + Bdmax·ηd`` (eq. 14)."""
    return u_max + b_min + b_discharge_max * eta_d


def operational_shift(b_min: float, b_max: float, v: float,
                      reference_price: float) -> float:
    """The operational shift ``(Bmin + Bmax)/2 + V·p̄``.

    Centres the battery's target level mid-capacity and couples it to a
    reference price so the Lyapunov weights implement charge-when-cheap
    / discharge-when-dear arbitrage even for batteries far smaller than
    the theorem's safety margins.
    """
    return 0.5 * (b_min + b_max) + v * reference_price
