"""Fig. 7 — impact of ε, battery size and market structure.

Three factor studies at ``V = 1, T = 24``:

* **ε sweep** ``{0.25, 0.5, 1, 2}`` — larger ε weights delay control
  more heavily, so cost increases and delay shrinks;
* **battery size** ``{0, 15, 30}`` minutes of peak demand — cost
  decreases with storage (cheap/renewable energy gets time-shifted);
* **markets** — both markets ("TM") versus real-time-only ("RTM"):
  the long-term-ahead market's contract discount plus real-time
  flexibility beats real-time alone.

The paper's ordering of effect sizes (Section VI-B.3): storage benefit
> market-structure benefit > ε effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.config.presets import paper_controller_config, paper_system_config
from repro.experiments.common import (
    PAPER_BATTERY_SWEEP,
    PAPER_EPSILON_SWEEP,
    build_scenario,
    simulate_runs,
    spec_smartdpss,
)
from repro.rng import DEFAULT_SEED


@dataclass(frozen=True)
class FactorRow:
    """One factor setting's outcome."""

    label: str
    time_avg_cost: float
    avg_delay_slots: float


@dataclass(frozen=True)
class Fig7Result:
    """All three factor studies of Fig. 7."""

    epsilon_rows: tuple[FactorRow, ...]
    battery_rows: tuple[FactorRow, ...]
    market_rows: tuple[FactorRow, ...]

    @property
    def epsilon_cost_nondecreasing(self) -> bool:
        """Cost should grow (weakly) with ε."""
        costs = [r.time_avg_cost for r in self.epsilon_rows]
        return all(costs[i + 1] >= costs[i] * 0.99
                   for i in range(len(costs) - 1))

    @property
    def battery_cost_nonincreasing(self) -> bool:
        """Cost should shrink (weakly) with battery size."""
        costs = [r.time_avg_cost for r in self.battery_rows]
        return all(costs[i + 1] <= costs[i] * 1.01
                   for i in range(len(costs) - 1))

    @property
    def two_markets_cheaper(self) -> bool:
        """TM should beat RTM."""
        by_label = {r.label: r.time_avg_cost for r in self.market_rows}
        return by_label["TM"] < by_label["RTM"]


def run_fig7(seed: int = DEFAULT_SEED, days: int = 31,
             n_seeds: int = 5) -> Fig7Result:
    """Run the three factor studies, averaged over ``n_seeds`` traces.

    A 15-minute battery saves on the order of tenths of a percent of
    the bill, which is within single-trace noise, so the factor
    studies average a few independent trace realizations (the paper
    replays one fixed trace; our synthetic traces let us do better).
    """
    scenarios = [build_scenario(seed=seed + offset, days=days)
                 for offset in range(max(1, n_seeds))]

    # Every factor setting replicated across every seed scenario is one
    # flat fleet; a single batched call runs them all in lockstep.
    factors: list[tuple[str, str]] = []
    specs = []

    for epsilon in PAPER_EPSILON_SWEEP:
        factors.append(("epsilon", f"eps={epsilon:g}"))
        specs.extend(
            spec_smartdpss(s, paper_controller_config(epsilon=epsilon))
            for s in scenarios)

    for minutes in PAPER_BATTERY_SWEEP:
        system = paper_system_config(battery_minutes=minutes, days=days)
        factors.append(("battery", f"Bmax={minutes:g}min"))
        specs.extend(
            spec_smartdpss(s, paper_controller_config(), system=system)
            for s in scenarios)

    for label, use_lt in (("TM", True), ("RTM", False)):
        factors.append(("market", label))
        specs.extend(
            spec_smartdpss(s, paper_controller_config(
                use_long_term_market=use_lt))
            for s in scenarios)

    results = simulate_runs(specs)

    def averaged(index: int) -> FactorRow:
        chunk = results[index * len(scenarios):
                        (index + 1) * len(scenarios)]
        return FactorRow(
            label=factors[index][1],
            time_avg_cost=sum(r.time_average_cost for r in chunk)
            / len(chunk),
            avg_delay_slots=sum(r.average_delay_slots for r in chunk)
            / len(chunk))

    rows = [averaged(index) for index in range(len(factors))]
    by_study = {
        study: tuple(row for (kind, _), row in zip(factors, rows)
                     if kind == study)
        for study in ("epsilon", "battery", "market")
    }
    return Fig7Result(epsilon_rows=by_study["epsilon"],
                      battery_rows=by_study["battery"],
                      market_rows=by_study["market"])


def render(result: Fig7Result) -> str:
    """Printed form of Fig. 7."""
    parts = []
    for title, rows in (("Fig 7 — epsilon sweep", result.epsilon_rows),
                        ("Fig 7 — battery size", result.battery_rows),
                        ("Fig 7 — market structure", result.market_rows)):
        table_rows = [[r.label, r.time_avg_cost, r.avg_delay_slots]
                      for r in rows]
        parts.append(format_table(["setting", "cost/slot", "avg delay"],
                                  table_rows, title=title))
    parts.append(
        "shape checks: eps cost nondecreasing = "
        f"{result.epsilon_cost_nondecreasing}, battery cost "
        f"nonincreasing = {result.battery_cost_nonincreasing}, "
        f"two markets cheaper = {result.two_markets_cheaper}")
    return "\n\n".join(parts)
