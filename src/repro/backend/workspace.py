"""Preallocated per-shard slot workspaces for the batch hot path.

Profiling the streamed fleet sweep showed the per-slot cost of the
NumPy engine to be *allocation-bound*: ``solve_p5_batch`` materializes
fresh ``(17, B)`` candidate/value tensors and a few dozen
``np.where`` / ``np.minimum`` temporaries every fine slot, and the
physics step another ~30 ``(B,)`` temporaries.  A workspace
preallocates every one of those buffers once per shard (one engine
invocation) and the in-place kernel variants write them with
``out=`` / ``copyto`` ufunc calls — the *same elementwise IEEE-754
operations in the same order*, so results stay bit-identical to the
allocation-style kernels (enforced three ways by
``tests/equivalence/test_backend_workspace.py``).

Three bundles, one per consumer:

* :class:`P5Workspace` — candidate grids, validity masks and objective
  scratch for :func:`repro.core.p5_vec.solve_p5_batch`;
* :class:`RealTimeWorkspace` — the per-slot controller prep in
  :meth:`repro.core.smartdpss_vec.VecSmartDPSS.real_time` /
  ``end_slot``;
* :class:`PhysicsWorkspace` — the engine's
  :meth:`~repro.sim.batch.BatchSimulator._step_physics` temporaries.

Workspaces require a *mutable* backend
(:attr:`~repro.backend.ArrayBackend.mutable`); on immutable namespaces
(JAX) :func:`workspace_enabled` returns ``False`` and every consumer
falls back to the allocation-style kernels.  Flip
:data:`WORKSPACE_DEFAULT` (benchmarks do) to force the allocation path
globally — that path is also the pre-workspace reference the
equivalence pack pins.
"""

from __future__ import annotations

from repro.backend import ArrayBackend, active_backend

#: Default for the engine/controller ``workspace`` knobs (``None``
#: resolves to this).  ``benchmarks/bench_backend.py`` flips it to
#: time the allocation-style reference against the workspace path.
WORKSPACE_DEFAULT = True


def workspace_enabled(flag: bool | None = None,
                      backend: ArrayBackend | None = None) -> bool:
    """Resolve a ``workspace`` knob against the default and backend.

    ``None`` means "the module default"; any setting is vetoed when
    the active backend cannot mutate arrays in place.
    """
    backend = backend or active_backend()
    if not backend.mutable:
        return False
    return WORKSPACE_DEFAULT if flag is None else bool(flag)


class P5Workspace:
    """Buffers for one batch's P5 vertex enumeration (``(C, B)`` grids).

    Rows the allocation-style kernel leaves at their initial value
    (zero candidate coordinates, always-valid rows) are initialized
    once here and never written by the in-place kernel, which is what
    lets the candidate matrices persist across slots.
    """

    __slots__ = (
        "xp", "batch", "n_candidates", "lanes",
        "grt", "gamma", "valid", "values",
        "sdt", "net", "ta", "tb", "charge", "waste", "deficit",
        "discharge", "unserved", "n_cost",
        "positive", "ma", "mb", "mc",
        "intercept", "present", "present_ok",
        "gamma_edges", "grt_edges",
        "graw", "hclip", "vraw", "vclip", "ha", "hb", "va", "vb",
        "gamma_hi", "grt_hi", "safe_slope", "base",
        "b1", "b2", "b3", "b4", "b5",
        "minimum", "threshold", "out_grt", "out_gamma",
        "lane_ok", "lane_bad", "backlog_pos",
        "rows", "flat_index",
    )

    def __init__(self, batch: int, n_candidates: int,
                 backend: ArrayBackend | None = None):
        backend = backend or active_backend()
        xp = backend.xp
        self.xp = xp
        self.batch = int(batch)
        self.n_candidates = int(n_candidates)
        c, n = self.n_candidates, self.batch
        self.lanes = xp.arange(n)

        # Candidate matrices: zero rows / always-valid rows are set
        # here once (see class docstring).
        self.grt = xp.zeros((c, n))
        self.gamma = xp.zeros((c, n))
        self.valid = xp.ones((c, n), dtype=bool)
        self.values = xp.empty((c, n))

        # Physics / objective scratch over the candidate matrix.
        for name in ("sdt", "net", "ta", "tb", "charge", "waste",
                     "deficit", "discharge", "unserved", "n_cost"):
            setattr(self, name, xp.empty((c, n)))
        for name in ("positive", "ma", "mb", "mc"):
            setattr(self, name, xp.empty((c, n), dtype=bool))

        # Breakpoint-line scratch (3 intercepts x 2 edges).
        self.intercept = xp.empty((3, n))
        self.present = xp.ones((3, n), dtype=bool)  # row 0 stays True
        self.present_ok = xp.empty((3, n), dtype=bool)
        self.gamma_edges = xp.zeros((2, n))  # row 0 stays 0.0
        self.grt_edges = xp.zeros((2, n))    # row 0 stays 0.0
        for name in ("graw", "hclip", "vraw", "vclip"):
            setattr(self, name, xp.empty((2, 3, n)))
        for name in ("ha", "hb", "va", "vb"):
            setattr(self, name, xp.empty((2, 3, n), dtype=bool))

        # Per-lane scratch.
        for name in ("gamma_hi", "grt_hi", "safe_slope", "base",
                     "b1", "b2", "b3", "b4", "b5",
                     "minimum", "threshold", "out_grt", "out_gamma"):
            setattr(self, name, xp.empty(n))
        for name in ("lane_ok", "lane_bad", "backlog_pos"):
            setattr(self, name, xp.empty(n, dtype=bool))
        self.rows = xp.empty(n, dtype=xp.intp)
        self.flat_index = xp.empty(n, dtype=xp.intp)


class RealTimeWorkspace:
    """Buffers for ``VecSmartDPSS``'s per-slot prep and queue updates."""

    __slots__ = ("xp", "batch", "price_n", "charge_room", "charge_cap",
                 "discharge_room", "discharge_cap", "grt_cap", "growth",
                 "x_value", "usable", "not_usable")

    def __init__(self, batch: int, backend: ArrayBackend | None = None):
        backend = backend or active_backend()
        xp = backend.xp
        self.xp = xp
        self.batch = int(batch)
        n = self.batch
        for name in ("price_n", "charge_room", "charge_cap",
                     "discharge_room", "discharge_cap", "grt_cap",
                     "growth", "x_value"):
            setattr(self, name, xp.empty(n))
        self.usable = xp.empty(n, dtype=bool)
        self.not_usable = xp.empty(n, dtype=bool)


class PhysicsWorkspace:
    """Buffers for the engine's per-slot physics resolution."""

    __slots__ = (
        "xp", "batch",
        "rate", "grid_headroom", "supply_headroom", "budget_left",
        "grt", "ta", "tb", "cost_rt", "sdt_request", "desired",
        "surplus", "need", "discharge_cap", "covered",
        "discharge_request", "sdt", "unserved", "served_ds",
        "charge_request", "accepted", "waste", "cost_battery",
        "cost_lt", "cost_waste", "cost_total", "renewable_used",
        "curtailed", "supply",
        "m1", "m2", "m3", "had_backlog", "surplus_branch",
        "full_cover", "served_whole", "covers_ds", "allowed",
        "not_allowed",
    )

    def __init__(self, batch: int, backend: ArrayBackend | None = None):
        backend = backend or active_backend()
        xp = backend.xp
        self.xp = xp
        self.batch = int(batch)
        n = self.batch
        for name in ("rate", "grid_headroom", "supply_headroom",
                     "budget_left", "grt", "ta", "tb", "cost_rt",
                     "sdt_request", "desired", "surplus", "need",
                     "discharge_cap", "covered", "discharge_request",
                     "sdt", "unserved", "served_ds", "charge_request",
                     "accepted", "waste", "cost_battery", "cost_lt",
                     "cost_waste", "cost_total", "renewable_used",
                     "curtailed", "supply"):
            setattr(self, name, xp.empty(n))
        for name in ("m1", "m2", "m3", "had_backlog", "surplus_branch",
                     "full_cover", "served_whole", "covers_ds",
                     "allowed", "not_allowed"):
            setattr(self, name, xp.empty(n, dtype=bool))
