"""Property-based tests: from-scratch simplex versus HiGHS.

Random LPs built around a known feasible point keep instances feasible
by construction; the two solvers must agree on the optimum.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.solvers.highs import solve_with_highs
from repro.solvers.linear_program import LpModel
from repro.solvers.simplex import solve_with_simplex

finite = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@st.composite
def feasible_lp(draw):
    n_vars = draw(st.integers(min_value=1, max_value=5))
    n_cons = draw(st.integers(min_value=0, max_value=4))
    model = LpModel("hypothesis")
    costs = [draw(finite) for _ in range(n_vars)]
    xs = [model.add_var(f"x{i}", lb=0.0, ub=8.0, cost=costs[i])
          for i in range(n_vars)]
    point = [draw(st.floats(min_value=0.0, max_value=4.0))
             for _ in range(n_vars)]
    for _ in range(n_cons):
        coeffs = [draw(finite) for _ in range(n_vars)]
        slack = draw(st.floats(min_value=0.1, max_value=3.0))
        rhs = sum(c * p for c, p in zip(coeffs, point)) + slack
        model.add_le({x: c for x, c in zip(xs, coeffs)}, rhs)
    return model


@settings(max_examples=100, deadline=None)
@given(model=feasible_lp())
def test_simplex_matches_highs_on_random_lps(model):
    simplex = solve_with_simplex(model)
    highs = solve_with_highs(model, use_sparse=False)
    assert simplex.objective == pytest.approx(highs.objective,
                                              abs=1e-6)


@settings(max_examples=100, deadline=None)
@given(model=feasible_lp())
def test_simplex_solution_is_feasible(model):
    solution = solve_with_simplex(model)
    compiled = model.compile(use_sparse=False)
    x = solution.x
    for (lb, ub), value in zip(compiled["bounds"], x):
        assert lb - 1e-7 <= value <= ub + 1e-7
    if compiled["A_ub"] is not None:
        residual = compiled["A_ub"] @ x - compiled["b_ub"]
        assert np.all(residual <= 1e-6)
    if compiled["A_eq"] is not None:
        residual = compiled["A_eq"] @ x - compiled["b_eq"]
        assert np.all(np.abs(residual) <= 1e-6)


@settings(max_examples=100, deadline=None)
@given(model=feasible_lp())
def test_simplex_objective_matches_solution_vector(model):
    solution = solve_with_simplex(model)
    compiled = model.compile(use_sparse=False)
    recomputed = float(compiled["c"] @ solution.x)
    assert solution.objective == pytest.approx(recomputed, abs=1e-7)
