"""Simulation results: everything one run produced.

:class:`SimulationResult` bundles the recorded series, the delay ledger
statistics, market/battery accounting and the configuration that
produced them, and exposes the summary quantities the paper's figures
plot.  It is a plain value object — experiments keep lists of results
and tabulate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.system import SystemConfig
from repro.sim.metrics import (
    CostBreakdown,
    availability,
    battery_throughput,
    renewable_utilization,
    summarize_costs,
)
from repro.workload.queue import DelayStats


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one horizon simulation."""

    controller_name: str
    system: SystemConfig
    series: dict[str, np.ndarray]
    delay_stats: DelayStats
    battery_operations: int
    lt_energy: float
    rt_energy: float
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Cost metrics (paper eq. 10)
    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Simulated fine slots."""
        return int(self.series["cost_total"].size)

    @property
    def costs(self) -> CostBreakdown:
        """Cost component totals."""
        return summarize_costs(self.series)

    @property
    def total_cost(self) -> float:
        """Total operational cost over the horizon ($)."""
        return self.costs.total

    @property
    def time_average_cost(self) -> float:
        """The paper's objective: mean cost per fine slot ($/slot)."""
        return self.costs.time_average(self.n_slots)

    # ------------------------------------------------------------------
    # Service metrics
    # ------------------------------------------------------------------

    @property
    def average_delay_slots(self) -> float:
        """Energy-weighted mean delay of delay-tolerant service."""
        return self.delay_stats.average_delay

    def average_delay_hours(self) -> float:
        """Mean delay converted to hours."""
        return self.average_delay_slots * self.system.slot_hours

    @property
    def worst_delay_slots(self) -> int:
        """Largest realized delay (compare against λmax)."""
        return self.delay_stats.max_delay

    @property
    def availability(self) -> float:
        """Fraction of delay-sensitive demand served on time."""
        return availability(self.series)

    @property
    def unserved_ds_total(self) -> float:
        """Total delay-sensitive energy not served (MWh)."""
        return float(self.series["unserved_ds"].sum())

    @property
    def renewable_utilization(self) -> float:
        """Fraction of renewable production actually used."""
        return renewable_utilization(self.series)

    @property
    def waste_total(self) -> float:
        """Total wasted energy ``Σ W(τ)`` (MWh)."""
        return float(self.series["waste"].sum())

    @property
    def battery_throughput(self) -> float:
        """Energy cycled through the UPS (MWh)."""
        return battery_throughput(self.series)

    @property
    def final_backlog(self) -> float:
        """Backlog left at the horizon end (MWh)."""
        return float(self.series["backlog"][-1])

    @property
    def peak_backlog(self) -> float:
        """Largest backlog observed (compare against Qmax)."""
        return float(self.series["backlog"].max())

    @property
    def battery_range(self) -> tuple[float, float]:
        """(min, max) battery level over the horizon."""
        levels = self.series["battery_level"]
        return float(levels.min()), float(levels.max())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """One-row summary used by the benchmark tables."""
        return {
            "time_avg_cost": self.time_average_cost,
            "total_cost": self.total_cost,
            "cost_lt": self.costs.long_term,
            "cost_rt": self.costs.real_time,
            "cost_battery": self.costs.battery,
            "cost_waste": self.costs.waste,
            "avg_delay_slots": self.average_delay_slots,
            "worst_delay_slots": float(self.worst_delay_slots),
            "availability": self.availability,
            "waste_mwh": self.waste_total,
            "battery_ops": float(self.battery_operations),
            "renewable_utilization": self.renewable_utilization,
            "peak_backlog": self.peak_backlog,
            "final_backlog": self.final_backlog,
        }
