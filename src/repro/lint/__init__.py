"""repro-lint: AST-based enforcement of this repo's coding invariants.

See ``repro/lint/README.md`` for the rule catalogue, suppression
syntax and baseline workflow.  CLI::

    PYTHONPATH=src python -m repro.lint src/repro

Programmatic::

    from repro.lint import run_lint
    report = run_lint(["src/repro"])
    assert report.clean, report.findings
"""

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.core import (
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    build_context,
    run_lint,
)
from repro.lint.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleContext",
    "RULES_BY_ID",
    "Rule",
    "build_context",
    "fingerprint",
    "run_lint",
]
