"""Cross-engine equivalence for the baseline controllers.

The hypothesis harness in ``test_cross_engine.py`` gates SmartDPSS;
fleet refactors also reroute the *baseline* policies through the batch
engine's scalar-controller adapter, so this module extends the same
generated-scenario treatment to them:

* :class:`~repro.baselines.impatient.ImpatientController` and
  :class:`~repro.baselines.myopic.MyopicPriceThreshold` — cheap, so
  they ride in every generated pack;
* :class:`~repro.baselines.lookahead.LookaheadController`,
  :class:`~repro.baselines.lookahead.PaperP2Offline` and
  :class:`~repro.baselines.offline.OfflineOptimal` — LP-backed oracles
  (deterministic given traces), exercised on tiny horizons so the
  hypothesis loop stays in seconds.

Each scenario runs through the scalar :class:`Simulator` with a fresh
controller instance and through ``simulate_many(executor="batch")``
(which batches the mixed pack via ``ScalarControllerBatch``), and the
two are compared slot for slot with the shared 1e-9 bar.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.baselines import (
    ImpatientController,
    LookaheadController,
    MyopicPriceThreshold,
    OfflineOptimal,
    PaperP2Offline,
)
from repro.sim.batch import RunSpec, simulate_many
from repro.sim.engine import Simulator
from repro.traces.base import TraceSet

from tests.equivalence.test_cross_engine import (
    _floats,
    _series,
    assert_equivalent,
    systems,
)

pytestmark = pytest.mark.equivalence

#: (name, fresh-instance factory) per baseline; oracle factories take
#: the run's traces, online ones ignore them.
BASELINE_FACTORIES = {
    "impatient": lambda traces, draw: ImpatientController(
        plan_for_total_demand=draw(st.booleans())),
    "myopic": lambda traces, draw: MyopicPriceThreshold(
        serve_quantile=draw(_floats(0.1, 0.9))),
    "lookahead": lambda traces, draw: LookaheadController(
        traces,
        terminal_energy_value=draw(_floats(0.0, 80.0)),
        backlog_penalty=draw(_floats(0.0, 100.0))),
    "paper_p2": lambda traces, draw: PaperP2Offline(traces),
    "offline": lambda traces, draw: OfflineOptimal(
        traces, deadline_slots=draw(st.integers(2, 8))),
}


@st.composite
def baseline_packs(draw):
    """2-3 scenarios with baseline controllers on one tiny shape.

    Every pack mixes at least one LP-backed oracle with the cheap
    online baselines, so the batched ``ScalarControllerBatch`` path is
    exercised on a genuinely heterogeneous policy mix.
    """
    base = draw(systems()).replace(fine_slots_per_coarse=draw(
        st.integers(1, 3)), num_coarse_slots=2)
    n = base.horizon_slots
    kinds = draw(st.lists(
        st.sampled_from(sorted(BASELINE_FACTORIES)),
        min_size=2, max_size=3))
    if not set(kinds) & {"lookahead", "paper_p2", "offline"}:
        kinds[0] = "offline"
    packs = []
    for kind in kinds:
        # The oracle LPs have no unserved-demand slack, so (as the
        # paper does for its traces) keep per-slot demand within the
        # feeder's reach: dds below Pgrid, ddt below the service rate.
        traces = TraceSet(
            demand_ds=_series(draw, n, 0.0, 0.9 * base.p_grid),
            demand_dt=_series(draw, n, 0.0,
                              0.8 * min(base.s_dt_max, base.p_grid)),
            renewable=_series(draw, n, 0.0, 1.5),
            price_rt=_series(draw, n, 0.0, 200.0),
            price_lt_hourly=_series(draw, n, 0.0, 200.0),
        )
        packs.append((kind, base, traces,
                      BASELINE_FACTORIES[kind],
                      draw))
    return packs


@settings(max_examples=12, deadline=None)
@given(baseline_packs())
def test_baselines_batch_matches_scalar(packs):
    """Generated baseline scenarios: batch == scalar within 1e-9."""
    from repro.exceptions import InfeasibleProblemError

    runs = []
    scalar_results = []
    for kind, system, traces, factory, draw in packs:
        # Two independently built, identically configured instances:
        # the oracle controllers are deterministic in (traces, params),
        # so scalar and batch runs see the same policy.
        batch_controller = factory(traces, draw)
        scalar_controller = type(batch_controller)(**_ctor_args(
            batch_controller, traces))
        try:
            scalar_results.append(
                Simulator(system, scalar_controller, traces).run())
        except InfeasibleProblemError:
            # Rare residual infeasibility (e.g. a tight deadline on a
            # tiny battery) — not a cross-engine property; skip.
            assume(False)
        runs.append(RunSpec(system=system, controller=batch_controller,
                            traces=traces))
    batch_results = simulate_many(runs, executor="batch")
    for index, (scalar, batch) in enumerate(
            zip(scalar_results, batch_results)):
        assert_equivalent(scalar, batch,
                          context=f"baseline scenario {index}: ")


def _ctor_args(controller, traces) -> dict:
    """Reconstruct a baseline's constructor arguments for a twin."""
    if isinstance(controller, ImpatientController):
        return {"plan_for_total_demand":
                controller.plan_for_total_demand}
    if isinstance(controller, MyopicPriceThreshold):
        return {"serve_quantile": controller.serve_quantile}
    if isinstance(controller, PaperP2Offline):
        return {"traces": traces,
                "terminal_energy_value":
                controller.terminal_energy_value}
    if isinstance(controller, LookaheadController):
        return {"traces": traces,
                "terminal_energy_value":
                controller.terminal_energy_value,
                "backlog_penalty": controller.backlog_penalty}
    if isinstance(controller, OfflineOptimal):
        return {"traces": traces,
                "deadline_slots": controller._deadline}
    raise TypeError(f"unexpected controller {type(controller)}")
