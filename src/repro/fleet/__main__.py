"""Fleet command line: run streamed sweeps, report aggregated tables.

Examples
--------
Run a 10⁴-scenario streamed V-sweep (20 values × 500 seeds) on a
one-day horizon and stream results into ``out/fleet``::

    python -m repro.fleet run --demo v-sweep --scenarios 10000 \\
        --days 1 --t-slots 6 --out out/fleet --workers 2

Run a scenario-diverse random fleet (controller and trace parameters
sampled per scenario)::

    python -m repro.fleet run --demo random --scenarios 5000 --out out/r

Run an explicit fleet from a JSON file (a list of ScenarioSpec
dicts)::

    python -m repro.fleet run --spec-file fleet.json --out out/custom

Pair every scenario with a noisy-observation twin (20 % uniform
sensor error) and record the robustness gap::

    python -m repro.fleet run --demo v-sweep --out out/fleet \\
        --robustness 0.2

Aggregate whatever a store holds into a seed-averaged table::

    python -m repro.fleet report --out out/fleet

Instrument a run and read its per-stage wall-time breakdown back::

    python -m repro.fleet run --demo v-sweep --out out/fleet --telemetry
    python -m repro.fleet stats out/fleet
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

import numpy as np

from repro.fleet.runner import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHUNK_COARSE,
    FleetRunner,
    RunProgress,
    ShardOutcome,
)
from repro.fleet.spec import (
    ScenarioSpec,
    grid_specs,
    sample_specs,
)
from repro.fleet.store import DEFAULT_TABLE_METRICS, ResultStore
from repro.telemetry import RunManifest, monotonic, stage_split
from repro.exceptions import ConfigurationError

DEMOS = ("v-sweep", "t-sweep", "random")

logger = logging.getLogger("repro.fleet")


def _configure_logging(level_name: str) -> None:
    """Console logging to stderr for one CLI invocation.

    ``force=True`` rebinds handlers every call, so repeated in-process
    ``main()`` invocations (tests, notebooks) never write to a stale
    captured stream.  Reporting output (tables, manifests) stays on
    stdout; progress and diagnostics go through the ``repro.*`` logger
    hierarchy to stderr.
    """
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        raise SystemExit(f"unknown log level {level_name!r}")
    fmt = ("%(message)s" if level >= logging.INFO
           else "%(levelname)s %(name)s: %(message)s")
    logging.basicConfig(stream=sys.stderr, level=level, format=fmt,
                        force=True)


def _template(days: int, t_slots: int) -> ScenarioSpec:
    return ScenarioSpec(
        system={"preset": "paper", "days": days,
                "fine_slots_per_coarse": t_slots},
        controller={"kind": "smartdpss"},
        trace={"kind": "stream"},
    )


def build_demo_fleet(demo: str, n_scenarios: int, days: int,
                     t_slots: int, sample_seed: int
                     ) -> list[ScenarioSpec]:
    """Deterministically expand a demo description into a fleet."""
    if n_scenarios < 1:
        raise ConfigurationError(f"need >= 1 scenario, got {n_scenarios}")
    template = _template(days, t_slots)
    if demo == "v-sweep":
        values = [round(float(v), 4)
                  for v in np.geomspace(0.05, 5.0, num=20)]
        seeds = range(max(1, -(-n_scenarios // len(values))))
        specs = grid_specs(template, "controller.v", values, seeds=seeds)
        return specs[:n_scenarios]
    if demo == "t-sweep":
        values = [t for t in (3, 6, 12, 24) if (days * 24) % t == 0]
        seeds = range(max(1, -(-n_scenarios // len(values))))
        specs = grid_specs(template, "system.fine_slots_per_coarse",
                           values, seeds=seeds)
        return specs[:n_scenarios]
    if demo == "random":
        space = {
            "controller.v": (0.05, 5.0),
            "controller.epsilon": (0.25, 2.0),
            "trace.solar.capacity_mw": (2.0, 6.0),
            "trace.price.mean_price": (35.0, 65.0),
        }
        return sample_specs(template, space, n_scenarios,
                            seed=sample_seed)
    raise ConfigurationError(f"unknown demo {demo!r}; expected one of {DEMOS}")


def load_spec_file(path: Path) -> list[ScenarioSpec]:
    """A fleet from a JSON file: a list of ScenarioSpec dicts."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"{path}: expected a JSON list of ScenarioSpec objects")
    return [ScenarioSpec.from_dict(entry) for entry in payload]


def _eta_text(eta_s: float) -> str:
    return "?" if eta_s == float("inf") else f"{eta_s:.0f}s"


def cmd_run(args: argparse.Namespace) -> int:
    if args.spec_file is not None:
        specs = load_spec_file(Path(args.spec_file))
    else:
        specs = build_demo_fleet(args.demo, args.scenarios, args.days,
                                 args.t_slots, args.sample_seed)
    store = ResultStore(args.out)
    runner = FleetRunner(specs, batch_size=args.batch_size,
                         chunk_coarse=args.chunk_coarse,
                         max_workers=args.workers, store=store,
                         resume=not args.no_resume,
                         offline_gap=args.offline_gap,
                         robustness=args.robustness,
                         telemetry=args.telemetry,
                         max_retries=args.max_retries,
                         shard_timeout=args.shard_timeout,
                         fail_fast=args.fail_fast,
                         retry_quarantined=args.retry_quarantined)

    t0 = monotonic()

    def verbose_progress(outcome: ShardOutcome, finished: int,
                         total: int, stats: RunProgress) -> None:
        logger.info(
            "  shard %d/%d done (%d scenarios, engine=%s, %.2fs; "
            "cumulative %.0f scenarios/s, eta %s)",
            finished, total, len(outcome.indices), outcome.engine,
            outcome.elapsed_s, stats.rate, _eta_text(stats.eta_s))

    def quiet_progress(outcome: ShardOutcome, finished: int,
                       total: int, stats: RunProgress) -> None:
        # Single overwriting line; only on a real terminal so captured
        # CI/test output stays clean.
        if not sys.stderr.isatty():
            return
        sys.stderr.write(
            f"\r  {stats.scenarios_done}/{stats.scenarios_total} "
            f"scenarios, shard {finished}/{total} "
            f"({stats.rate:.0f}/s, eta {_eta_text(stats.eta_s)})  ")
        if finished == total:
            sys.stderr.write("\n")
        sys.stderr.flush()

    logger.info(
        "fleet: %d scenarios, %d shards, workers=%s, batch_size=%d, "
        "chunk_coarse=%d%s", len(specs), len(runner.shards()),
        args.workers or 1, args.batch_size, args.chunk_coarse,
        ", telemetry" if args.telemetry else "")
    runner.run(progress=verbose_progress if args.verbose
               else quiet_progress)
    elapsed = monotonic() - t0
    summary = (f"completed {len(specs)} scenarios in {elapsed:.2f}s "
               f"({len(specs) / elapsed:.0f} scenarios/s); results in "
               f"{store.path}")
    stats = runner.last_run_stats or {}
    if stats.get("quarantined"):
        logger.warning(
            "%d scenario(s) quarantined (%d retries, %d pool respawns) "
            "— typed reasons in %s; re-offer them with "
            "--retry-quarantined", stats["quarantined"],
            stats.get("retries", 0), stats.get("pool_respawns", 0),
            store.error_path)
    if runner.last_manifest is not None:
        split = stage_split(runner.last_manifest.stages)
        if split:
            summary += f" [{split}]"
        summary += f"; manifest in {store.manifest_path}"
    logger.info("%s", summary)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    if args.metrics:
        metrics = tuple(args.metrics.split(","))
    else:
        metrics = DEFAULT_TABLE_METRICS
        # Offline-gap and robustness columns are optional per run; show
        # them whenever every stored record carries them.
        present = store.metric_columns()
        metrics += tuple(
            name for name in ("offline_cost", "offline_gap",
                              "noisy_cost", "robustness_gap",
                              "observation_rel_error")
            if name in present)
    table = store.sweep_table(name=f"fleet report ({store.root})",
                              metrics=metrics)
    print(table.render())
    print(f"{len(store)} records, {len(table.points)} distinct values")
    return 0


def _render_quarantine(store: ResultStore) -> bool:
    """Print the quarantined-scenario view; True if any exist."""
    errors = store.errors()
    if not errors:
        return False
    # A scenario that later succeeded (retry-quarantined rerun) is no
    # longer quarantined — only show hashes without a result record.
    resolved = store.spec_hashes()
    active = [record for record in errors
              if record.get("spec_hash") not in resolved]
    print(f"quarantined scenarios: {len(active)} active "
          f"({len(errors)} quarantine record(s) in {store.error_path})")
    for record in active:
        error = record.get("error", {})
        site = error.get("site")
        print(f"  {record.get('name', '?')} (seed {record.get('seed')}):"
              f" {error.get('type', '?')}"
              + (f" at {site!r}" if site else "")
              + f" after {error.get('attempts', '?')} attempt(s) — "
              + str(error.get("message", ""))[:100])
    if active:
        print("  (re-offer with: python -m repro.fleet run ... "
              "--retry-quarantined)")
    return True


def cmd_stats(args: argparse.Namespace) -> int:
    """Render run manifests (and quarantined scenarios) of a store."""
    store = ResultStore(args.store)
    manifests = store.manifests()
    shown = 0
    if manifests:
        selected = manifests if args.all else manifests[-1:]
        for data in selected:
            if shown:
                print()
            print(RunManifest.from_dict(data).render())
            shown += 1
        if not args.all and len(manifests) > 1:
            print(f"({len(manifests) - 1} earlier run(s) stored; "
                  f"--all shows every manifest)")
    if shown:
        print()
    had_errors = _render_quarantine(store)
    if not manifests and not had_errors:
        logger.error(
            "no run manifests in %s — run the fleet with --telemetry "
            "to record one", store.manifest_path)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--log-level", default="info",
                        help="console log level on stderr "
                             "(debug/info/warning/error; default: info)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute a fleet of scenarios")
    run.add_argument("--out", required=True,
                     help="result-store directory (append-only)")
    run.add_argument("--demo", choices=DEMOS, default="v-sweep",
                     help="built-in fleet family (default: v-sweep)")
    run.add_argument("--scenarios", type=int, default=100,
                     help="fleet size for --demo (default: 100)")
    run.add_argument("--days", type=int, default=1,
                     help="horizon length in days (default: 1)")
    run.add_argument("--t-slots", type=int, default=6,
                     help="coarse slot length T in hours (default: 6)")
    run.add_argument("--spec-file", default=None,
                     help="JSON file with an explicit ScenarioSpec list "
                          "(overrides --demo)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: in-process)")
    run.add_argument("--batch-size", type=int,
                     default=DEFAULT_BATCH_SIZE,
                     help="scenarios per vectorized shard")
    run.add_argument("--chunk-coarse", type=int,
                     default=DEFAULT_CHUNK_COARSE,
                     help="coarse slots of trace data resident per "
                          "scenario")
    run.add_argument("--telemetry", action="store_true",
                     help="record stage-level timing and counters; "
                          "appends a run manifest to the store's "
                          "manifest.jsonl (read it back with the "
                          "stats command)")
    run.add_argument("--offline-gap", action="store_true",
                     help="solve the clairvoyant offline baseline per "
                          "scenario (batched LP) and record "
                          "offline_cost/offline_gap columns")
    run.add_argument("--robustness", type=float, default=None,
                     metavar="REL",
                     help="re-run every scenario under uniform "
                          "observation noise of this relative error "
                          "and record noisy_cost/robustness_gap "
                          "columns (paired clean-vs-noisy sweep)")
    run.add_argument("--no-resume", action="store_true",
                     help="re-execute scenarios whose spec hash is "
                          "already stored (default: skip them and "
                          "serve the stored records — interrupted "
                          "sweeps resume cheaply)")
    run.add_argument("--max-retries", type=int, default=2,
                     help="times a failing shard is re-run as-is before "
                          "bisection (default: 2)")
    run.add_argument("--shard-timeout", type=float, default=None,
                     help="per-shard wall-clock budget in seconds "
                          "(pool mode; default: none)")
    run.add_argument("--fail-fast", action="store_true",
                     help="abort on the first shard failure instead of "
                          "retrying/bisecting/quarantining")
    run.add_argument("--retry-quarantined", action="store_true",
                     help="re-offer scenarios previously quarantined "
                          "in errors.jsonl (default: treat them as "
                          "done on resume)")
    run.add_argument("--sample-seed", type=int, default=0,
                     help="root seed for --demo random")
    run.add_argument("--verbose", action="store_true",
                     help="print per-shard progress")
    run.set_defaults(handler=cmd_run)

    report = commands.add_parser(
        "report", help="aggregate a result store into a table")
    report.add_argument("--out", required=True,
                        help="result-store directory to read")
    report.add_argument("--metrics", default=None,
                        help="comma-separated metric names")
    report.set_defaults(handler=cmd_report)

    stats = commands.add_parser(
        "stats", help="render stored run manifests (per-stage timing)")
    stats.add_argument("store",
                       help="result-store directory holding a "
                            "manifest.jsonl sidecar")
    stats.add_argument("--all", action="store_true",
                       help="render every stored manifest, not just "
                            "the latest run")
    stats.set_defaults(handler=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
