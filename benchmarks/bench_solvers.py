"""Microbenchmarks of the optimization substrate (Abl-3 cross-checks).

Times the hot path (the exact P5 vertex enumeration runs every
simulated fine slot) and the offline LP, and cross-checks the from-
scratch simplex against HiGHS on a small structured instance.
"""

import numpy as np

from repro.config.control import ObjectiveMode
from repro.config.presets import paper_system_config
from repro.core.modes import SlotState
from repro.core.p5 import solve_p5
from repro.baselines.offline import solve_offline_plan
from repro.solvers.highs import solve_with_highs
from repro.solvers.linear_program import LpModel
from repro.solvers.simplex import solve_with_simplex
from repro.traces.library import make_paper_traces


def _slot_state(seed: int = 3) -> SlotState:
    rng = np.random.default_rng(seed)
    return SlotState(
        q_hat=float(rng.uniform(0, 10)),
        y_hat=float(rng.uniform(0, 10)),
        x_hat=float(rng.uniform(-6, 1)),
        v=1.0,
        price_rt=float(rng.uniform(1.8, 20.0)),
        battery_op_cost=0.01,
        waste_penalty=0.1,
        backlog=float(rng.uniform(0, 8)),
        gbef_rate=float(rng.uniform(0, 2)),
        renewable=float(rng.uniform(0, 1)),
        demand_ds=float(rng.uniform(0.5, 2.0)),
        charge_cap=0.5,
        discharge_cap=0.37,
        eta_c=0.8,
        eta_d=1.25,
        s_dt_max=2.0,
        grt_cap=1.0,
        battery_margin=0.3,
    )


def _small_lp() -> LpModel:
    model = LpModel("bench-small")
    x = model.add_var("x", lb=0.0, ub=4.0, cost=1.0)
    y = model.add_var("y", lb=0.0, ub=4.0, cost=2.0)
    z = model.add_var("z", lb=0.0, cost=-1.0)
    model.add_ge({x: 1.0, y: 1.0}, 3.0)
    model.add_le({z: 1.0, x: -1.0}, 0.0)
    model.add_eq({y: 2.0, z: 1.0}, 4.0)
    return model


def test_p5_enumeration_speed(benchmark):
    state = _slot_state()
    solution = benchmark(solve_p5, state, ObjectiveMode.DERIVED)
    assert solution.feasible


def test_offline_lp_speed(benchmark):
    system = paper_system_config(days=7)
    traces = make_paper_traces(system, seed=11)
    plan = benchmark.pedantic(solve_offline_plan, args=(system, traces),
                              rounds=1, iterations=1)
    assert plan.lp_objective > 0


def test_simplex_matches_highs(benchmark):
    model = _small_lp()
    simplex = benchmark(solve_with_simplex, model)
    highs = solve_with_highs(model, use_sparse=False)
    assert abs(simplex.objective - highs.objective) < 1e-7
