"""Counterfactual decomposition of SmartDPSS's savings.

The paper's Fig. 7 discussion ranks effect sizes ("the benefit brought
by energy storage is higher than that of the markets structure, while
the markets benefit is higher than that of parameter ε").  This module
turns that ranking into a measurement via counterfactual runs on the
identical traces:

* **price-aware deferral & planning** — Impatient versus SmartDPSS,
  both with the two-timescale markets and *no* battery: the pure value
  of the Lyapunov demand management and profile-aware planning;
* **energy storage** — SmartDPSS without versus with the UPS battery:
  the value of time-shifting energy through storage.

These two steps are measured on matching footings, so they sum exactly
to the end-to-end saving over Impatient.  A third, *independent*
measurement reports the two-timescale market's value within SmartDPSS
(real-time-only versus both markets, battery off) — it is not part of
the ladder sum because Impatient already enjoys the long-term market.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.impatient import ImpatientController
from repro.config.control import SmartDPSSConfig
from repro.config.system import SystemConfig
from repro.core.smartdpss import SmartDPSS
from repro.sim.engine import Simulator
from repro.traces.base import TraceSet


@dataclass(frozen=True)
class SavingsDecomposition:
    """Per-mechanism contributions to the total saving ($/slot)."""

    impatient_cost: float
    full_cost: float
    deferral: float
    storage: float
    markets_value: float

    @property
    def total_saving(self) -> float:
        """End-to-end saving versus Impatient (= deferral + storage)."""
        return self.impatient_cost - self.full_cost

    def as_rows(self) -> list[tuple[str, float]]:
        """(mechanism, $/slot) rows for tabulation."""
        return [
            ("price-aware deferral & planning", self.deferral),
            ("energy storage", self.storage),
            ("total vs Impatient", self.total_saving),
            ("(two-timescale market value)", self.markets_value),
        ]


def decompose_savings(system: SystemConfig, traces: TraceSet,
                      config: SmartDPSSConfig) -> SavingsDecomposition:
    """Run the counterfactual ladder and attribute the savings."""
    no_battery_system = system.replace(b_max=0.0, b_min=0.0,
                                       b_init=None)

    def run(controller, sys=system) -> float:
        return Simulator(sys, controller, traces).run() \
            .time_average_cost

    impatient = run(ImpatientController(), no_battery_system)

    rtm_only = run(
        SmartDPSS(config.replace(use_long_term_market=False,
                                 use_battery=False)),
        no_battery_system)
    both_markets = run(
        SmartDPSS(config.replace(use_battery=False)),
        no_battery_system)
    full = run(SmartDPSS(config), system)

    return SavingsDecomposition(
        impatient_cost=impatient,
        full_cost=full,
        deferral=impatient - both_markets,
        storage=both_markets - full,
        markets_value=rtm_only - both_markets,
    )
