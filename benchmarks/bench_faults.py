"""Fault-harness overhead benchmark: disarmed vs armed-but-quiet sweep.

One measurement, written to ``BENCH_faults.json`` at the repo root
(see benchmarks/README.md for how to read it): the 10⁴-scenario
streamed v-sweep (the CLI demo fleet) with the fault-injection harness
disarmed (no fault keys in the payload — the production state) and
armed with a plan that never fires (every fault pinned to a scenario
name that does not exist — the realistic armed shape: a plan pinned
to one scenario in a 10⁴ fleet leaves every other shard unmatched, so
``ShardFaults`` must resolve it to zero per-slot work at bind time).
Two gates make the verdict real:

1. **Bit-identity** — the armed run's records must equal the disarmed
   run's records exactly (a quiet harness only scans fault lists,
   never numeric state).  A single differing bit fails the benchmark
   outright.
2. **Overhead ceiling** — the armed-but-quiet harness may cost at most
   2 % extra process CPU time; the disarmed path is the engine's
   normal operating point and is what every other benchmark measures.

The arms are paired at *shard* granularity with alternating order
(exactly as ``bench_telemetry.py`` — see its docstring for why paired
shards beat timing two whole sweeps for a 2 % effect).

Run::

    PYTHONPATH=src python benchmarks/bench_faults.py            # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick    # small
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.faults import Fault, FaultPlan  # noqa: E402
from repro.fleet.runner import FleetRunner, _run_spec_shard  # noqa: E402
from repro.fleet.__main__ import build_demo_fleet  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_faults.json"

#: Acceptance ceiling: armed-but-quiet CPU time over disarmed.
MAX_OVERHEAD = 0.02

#: Never matches a real scenario: the armed arm pays the bind-time
#: scan (every fault against every shard scenario) and must resolve to
#: zero per-slot work — the state of every unmatched shard whenever a
#: plan pins faults to specific scenarios.
QUIET_PLAN = FaultPlan(faults=(
    Fault(site="slot_loop", scenario="__bench_no_such_scenario__",
          times=None),
    Fault(site="traces", scenario="__bench_no_such_scenario__",
          times=None),
    Fault(site="plan", scenario="__bench_no_such_scenario__",
          times=None),
))


def canonical(outcomes: list) -> str:
    """One arm's records, ordered by spec position, as canonical JSON."""
    rows = [(index, record) for outcome in outcomes
            for index, record in zip(outcome.indices, outcome.records)]
    rows.sort(key=lambda row: row[0])
    return json.dumps([record for _, record in rows], sort_keys=True)


def armed(payload: dict) -> dict:
    """The payload as the runner would stamp it with a plan attached."""
    return dict(payload, fault_plan=QUIET_PLAN.to_dict(),
                attempts=[0] * len(payload["indices"]),
                in_worker=False)


def measure(n_scenarios: int, batch_size: int, repeats: int) -> dict:
    specs = build_demo_fleet("v-sweep", n_scenarios, days=1, t_slots=6,
                             sample_seed=0)
    payloads = FleetRunner(specs, batch_size=batch_size,
                           fault_plan=FaultPlan()).shards()

    # Warm every lazily-compiled structure and cache so neither arm
    # pays cold-start costs inside the paired loop.
    for payload in payloads[: min(8, len(payloads))]:
        _run_spec_shard(armed(payload))

    ratios = []
    off_totals, on_totals = [], []
    identical = None
    for repeat in range(repeats):
        off_cpu = on_cpu = 0.0
        outcomes: dict[str, list] = {"off": [], "on": []}
        for i, payload in enumerate(payloads):
            # Alternate which arm goes first (and flip per repeat) so
            # second-run cache warmth and slow drift cancel.
            order = (("off", "on") if (i + repeat) % 2 == 0
                     else ("on", "off"))
            for arm in order:
                shard = armed(payload) if arm == "on" else dict(payload)
                cpu0 = time.process_time()
                outcome = _run_spec_shard(shard)
                elapsed = time.process_time() - cpu0
                if arm == "on":
                    on_cpu += elapsed
                else:
                    off_cpu += elapsed
                outcomes[arm].append(outcome)
        if identical is None:  # record contents never vary per repeat
            identical = canonical(outcomes["on"]) \
                == canonical(outcomes["off"])
        ratio = on_cpu / off_cpu - 1
        ratios.append(ratio)
        off_totals.append(off_cpu)
        on_totals.append(on_cpu)
        print(f"  repeat {repeat + 1}/{repeats}: cpu disarmed "
              f"{off_cpu:6.2f}s, armed {on_cpu:6.2f}s "
              f"({100 * ratio:+.2f}%)")

    overhead = statistics.median(ratios)
    return {
        "n_scenarios": n_scenarios,
        "batch_size": batch_size,
        "shards": len(payloads),
        "repeats": repeats,
        "disarmed_cpu_s": [round(c, 3) for c in off_totals],
        "armed_cpu_s": [round(c, 3) for c in on_totals],
        "overhead_per_repeat": [round(r, 4) for r in ratios],
        "overhead": round(overhead, 4),
        "records_identical": bool(identical),
        "scenarios_per_s": round(n_scenarios / min(off_totals), 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny fleet, no JSON output")
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(n_scenarios=200, batch_size=64, repeats=3)
        # Sub-second totals cannot resolve a 2 % effect; quick mode
        # gates only the bit-identity contract.
        target_met = bool(result["records_identical"])
    else:
        result = measure(n_scenarios=10_000, batch_size=64, repeats=5)
        target_met = bool(result["records_identical"]
                          and result["overhead"] <= MAX_OVERHEAD)
    payload = {
        "workload": ("streamed v-sweep demo fleet "
                     f"({result['n_scenarios']} scenarios, 1-day "
                     "horizon, T=6), fault harness disarmed vs armed "
                     "with a never-firing plan, paired per shard, "
                     f"median of {result['repeats']} repeats"),
        "target": ("armed-but-quiet records bit-identical to "
                   "disarmed; armed overhead <= "
                   f"{100 * MAX_OVERHEAD:.0f}% process CPU time"),
        "target_met": target_met,
        "max_overhead": MAX_OVERHEAD,
        "measurement": result,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    print(f"\n  identical={result['records_identical']}, overhead "
          f"{100 * result['overhead']:+.2f}% "
          f"(ceiling {100 * MAX_OVERHEAD:.0f}%)")
    if not args.quick:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
        print(f"wrote {OUTPUT} (target met: {target_met})")
    return 0 if target_met else 1


if __name__ == "__main__":
    raise SystemExit(main())
