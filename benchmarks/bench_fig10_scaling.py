"""Bench Fig. 10 — scalability under ``β``-fold system expansion.

Paper claim: with demand and renewables expanded to β times the
current scale (UPS fixed), total cost grows almost linearly — the
growth rate slowing as the system expands — and the system stays
stable (availability intact, delays bounded).
"""

from conftest import emit, run_once

from repro.experiments.fig10_scaling import render, run_fig10


def test_fig10_scaling(benchmark):
    result = run_once(benchmark, run_fig10)
    emit("fig10", render(result))

    rows = result.rows
    assert result.subscaling_holds
    # Cost grows with scale, but less than proportionally at each step.
    for prev, cur in zip(rows, rows[1:]):
        growth = cur.time_avg_cost / prev.time_avg_cost
        assert growth < cur.beta / prev.beta * 1.02
        assert growth > 1.0
    # Per-unit cost stays within a narrow band (no diseconomies).
    per_unit = [r.cost_per_unit_demand for r in rows]
    assert max(per_unit) < min(per_unit) * 1.05
    # Availability survives a 10x expansion.
    assert all(r.availability == 1.0 for r in rows)
