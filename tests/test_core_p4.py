"""P4 long-term-ahead planning."""

import numpy as np
import pytest

from repro.config.control import ObjectiveMode
from repro.core.p4 import P4State, solve_p4


def make_p4_state(**overrides) -> P4State:
    profile_ds = tuple(1.0 + 0.5 * np.sin(2 * np.pi * h / 24)
                       for h in range(24))
    profile_r = tuple(0.3 if 8 <= h <= 16 else 0.0 for h in range(24))
    profile_p = tuple(3.0 + 2.0 * np.sin(2 * np.pi * (h - 10) / 24)
                      for h in range(24))
    defaults = dict(
        v=1.0, price_lt=4.0, q_hat=1.0, y_hat=0.5, x_hat=-4.0,
        t_slots=24, demand_ds=1.0, renewable=0.15, battery_level=0.3,
        p_grid=2.0, discharge_avail=0.01, charge_headroom_total=0.25,
        eta_c=0.8, s_dt_max=2.0, waste_penalty=0.1,
        profile_demand_ds=profile_ds,
        profile_demand_dt=tuple(0.5 for _ in range(24)),
        profile_renewable=profile_r,
        profile_price_rt=profile_p,
    )
    defaults.update(overrides)
    return P4State(**defaults)


class TestPaperMode:
    def test_bang_bang_low_pressure(self):
        state = make_p4_state(q_hat=0.5, y_hat=0.2)
        solution = solve_p4(state, ObjectiveMode.PAPER)
        # V·plt = 4 > Q+Y = 0.7: buy only the feasibility floor.
        assert solution.rate == pytest.approx(solution.floor_rate)

    def test_bang_bang_high_pressure(self):
        state = make_p4_state(q_hat=3.0, y_hat=2.0)
        solution = solve_p4(state, ObjectiveMode.PAPER)
        # Q+Y = 5 > V·plt = 4: buy the grid maximum.
        assert solution.rate == pytest.approx(2.0)
        assert solution.gbef == pytest.approx(48.0)

    def test_floor_covers_ds_net_of_battery(self):
        state = make_p4_state(demand_ds=1.0, renewable=0.2,
                              discharge_avail=0.1, q_hat=0.0,
                              y_hat=0.0)
        solution = solve_p4(state, ObjectiveMode.PAPER)
        assert solution.floor_rate == pytest.approx(0.7)

    def test_floor_clamped_to_pgrid(self):
        state = make_p4_state(demand_ds=5.0, renewable=0.0,
                              discharge_avail=0.0)
        solution = solve_p4(state, ObjectiveMode.PAPER)
        assert solution.floor_rate == pytest.approx(2.0)


class TestDerivedMode:
    def test_rate_within_bounds(self):
        solution = solve_p4(make_p4_state(), ObjectiveMode.DERIVED)
        assert 0.0 <= solution.rate <= 2.0
        assert solution.gbef == pytest.approx(solution.rate * 24)

    def test_rate_at_least_floor(self):
        state = make_p4_state(demand_ds=1.8, renewable=0.0,
                              discharge_avail=0.0)
        solution = solve_p4(state, ObjectiveMode.DERIVED)
        assert solution.rate >= solution.floor_rate - 1e-12

    def test_cheap_contract_buys_more(self):
        cheap = solve_p4(make_p4_state(price_lt=2.0),
                         ObjectiveMode.DERIVED)
        dear = solve_p4(make_p4_state(price_lt=6.0),
                        ObjectiveMode.DERIVED)
        assert cheap.rate >= dear.rate

    def test_rich_renewable_buys_less(self):
        poor = make_p4_state()
        rich = make_p4_state(
            profile_renewable=tuple(0.8 for _ in range(24)))
        assert (solve_p4(rich, ObjectiveMode.DERIVED).rate
                <= solve_p4(poor, ObjectiveMode.DERIVED).rate)

    def test_covers_typical_profile_demand(self):
        # With RT prices well above the contract, the plan should cover
        # most of the observed net-demand profile.
        state = make_p4_state(
            price_lt=3.0,
            profile_price_rt=tuple(8.0 for _ in range(24)))
        solution = solve_p4(state, ObjectiveMode.DERIVED)
        nets = state.net_profile
        assert solution.rate >= np.median(nets) - 1e-9

    def test_arrivals_planning_buys_no_less(self):
        base = make_p4_state()
        planning = make_p4_state(plan_deferrable_arrivals=True)
        assert (solve_p4(planning, ObjectiveMode.DERIVED).rate
                >= solve_p4(base, ObjectiveMode.DERIVED).rate - 1e-12)

    def test_single_slot_profile_fallback(self):
        state = make_p4_state(profile_demand_ds=(1.0,),
                              profile_demand_dt=(0.5,),
                              profile_renewable=(0.2,),
                              profile_price_rt=(5.0,))
        solution = solve_p4(state, ObjectiveMode.DERIVED)
        assert 0.0 <= solution.rate <= 2.0

    def test_empty_profiles_use_scalars(self):
        state = make_p4_state(profile_demand_ds=(),
                              profile_demand_dt=(),
                              profile_renewable=(),
                              profile_price_rt=())
        solution = solve_p4(state, ObjectiveMode.DERIVED)
        assert solution.rate >= 0.0

    def test_net_profile_property(self):
        state = make_p4_state(
            profile_demand_ds=(1.0, 2.0),
            profile_renewable=(0.25, 0.5))
        assert state.net_profile == (0.75, 1.5)

    def test_optimality_against_rate_grid(self):
        # The candidate sweep must beat a dense rate grid.
        from repro.core.p4 import _window_cost
        state = make_p4_state()
        solution = solve_p4(state, ObjectiveMode.DERIVED)
        best_dense = min(
            _window_cost(state, r)
            for r in np.linspace(solution.floor_rate, 2.0, 4001))
        assert _window_cost(state, solution.rate) <= best_dense + 1e-9
