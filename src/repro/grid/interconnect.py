"""Grid interconnect: the physical draw cap (paper constraint 5).

Whatever the two markets sell, the feeder between the substation and
the datacenter carries at most ``Pgrid`` MWh per fine slot:

    0 ≤ gbef(t)/T + grt(τ) ≤ Pgrid.                        (eq. 5)

:class:`GridInterconnect` is the single authority for this constraint —
controllers use :meth:`remaining_capacity` when choosing purchases, and
the simulation engine uses :meth:`clamp_real_time` as a hard backstop
so no policy can overdraw the feeder.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, InfeasibleActionError


class GridInterconnect:
    """Enforces the per-fine-slot grid draw cap ``Pgrid``."""

    def __init__(self, p_grid: float):
        if p_grid < 0:
            raise ConfigurationError(f"Pgrid must be >= 0, got {p_grid}")
        self.p_grid = p_grid

    def validate_long_term_rate(self, per_slot_energy: float) -> None:
        """Check an advance-purchase delivery rate fits the feeder."""
        if per_slot_energy < 0:
            raise InfeasibleActionError(
                f"delivery rate must be >= 0, got {per_slot_energy}")
        if per_slot_energy > self.p_grid * (1 + 1e-9):
            raise InfeasibleActionError(
                f"long-term delivery rate {per_slot_energy} exceeds "
                f"Pgrid={self.p_grid}")

    def remaining_capacity(self, long_term_rate: float) -> float:
        """Feeder headroom for real-time purchases this slot."""
        return max(0.0, self.p_grid - long_term_rate)

    def clamp_real_time(self, requested: float,
                        long_term_rate: float) -> float:
        """Clamp a real-time purchase to the feeder headroom."""
        if requested < 0:
            raise InfeasibleActionError(
                f"real-time purchase must be >= 0, got {requested}")
        return min(requested, self.remaining_capacity(long_term_rate))

    def max_block_purchase(self, fine_slots_per_coarse: int) -> float:
        """Largest legal advance block ``gbef ≤ T · Pgrid``."""
        if fine_slots_per_coarse < 1:
            raise ConfigurationError(
                f"T must be >= 1, got {fine_slots_per_coarse}")
        return self.p_grid * fine_slots_per_coarse
