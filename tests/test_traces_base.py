"""Trace and TraceSet containers."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    HorizonMismatchError,
    TraceError,
)
from repro.traces.base import Trace, TraceSet
from tests.conftest import constant_traces


class TestTrace:
    def test_basic_stats(self):
        trace = Trace("demand", [1.0, 2.0, 3.0])
        assert trace.mean == pytest.approx(2.0)
        assert trace.peak == 3.0
        assert trace.total == 6.0
        assert len(trace) == 3
        assert trace[1] == 2.0

    def test_summary_keys(self):
        summary = Trace("x", [1.0, 2.0]).summary()
        assert set(summary) == {"mean", "std", "min", "max", "total"}

    def test_immutable(self):
        trace = Trace("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            trace.values[0] = 5.0

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            Trace("x", [1.0, -0.1])

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            Trace("x", [1.0, float("nan")])

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace("x", [])

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            Trace("x", [[1.0, 2.0]])

    def test_lower_bound_none_allows_negative(self):
        trace = Trace("net", [-1.0, 1.0], lower=None)
        assert trace[0] == -1.0


class TestTraceSet:
    def test_lengths_must_match(self):
        with pytest.raises(HorizonMismatchError):
            TraceSet(demand_ds=[1.0, 1.0], demand_dt=[0.1],
                     renewable=[0.0, 0.0], price_rt=[50.0, 50.0],
                     price_lt_hourly=[40.0, 40.0])

    def test_demand_total(self):
        traces = constant_traces(4, demand_ds=1.0, demand_dt=0.5)
        assert np.allclose(traces.demand_total, 1.5)

    def test_coarse_prices_averaging(self):
        traces = TraceSet(
            demand_ds=[1.0] * 4, demand_dt=[0.0] * 4,
            renewable=[0.0] * 4, price_rt=[50.0] * 4,
            price_lt_hourly=[10.0, 20.0, 30.0, 40.0])
        assert np.allclose(traces.coarse_prices(2), [15.0, 35.0])

    def test_coarse_prices_indivisible_rejected(self):
        traces = constant_traces(5)
        with pytest.raises(HorizonMismatchError):
            traces.coarse_prices(2)

    def test_coarse_prices_t1_identity(self):
        traces = constant_traces(4, price_lt=42.0)
        assert np.allclose(traces.coarse_prices(1), 42.0)

    def test_renewable_penetration(self):
        traces = constant_traces(10, demand_ds=0.8, demand_dt=0.2,
                                 renewable=0.5)
        assert traces.renewable_penetration == pytest.approx(0.5)

    def test_penetration_zero_demand(self):
        traces = constant_traces(3, demand_ds=0.0, demand_dt=0.0,
                                 renewable=0.5)
        assert traces.renewable_penetration == 0.0

    def test_replace_swaps_series(self):
        traces = constant_traces(4)
        doubled = traces.replace(renewable=traces.renewable * 2)
        assert np.allclose(doubled.renewable,
                           traces.renewable * 2)
        # Original untouched (immutability).
        assert np.allclose(traces.renewable, 0.2)

    def test_head_truncates_all_series(self):
        traces = constant_traces(10)
        head = traces.head(4)
        assert head.n_slots == 4
        assert head.price_rt.size == 4

    def test_head_invalid_length_rejected(self):
        traces = constant_traces(4)
        with pytest.raises(ConfigurationError):
            traces.head(0)
        with pytest.raises(ConfigurationError):
            traces.head(5)

    def test_summary_covers_all_series(self):
        summary = constant_traces(4).summary()
        assert set(summary) == {
            "demand_ds", "demand_dt", "demand_total", "renewable",
            "price_rt", "price_lt_hourly"}

    def test_demand_std_constant_is_zero(self):
        assert constant_traces(8).demand_std == pytest.approx(0.0)
