"""Simulation engine physics and accounting."""

import numpy as np
import pytest

from repro.baselines.impatient import ImpatientController
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.interfaces import Controller, RealTimeDecision
from repro.core.smartdpss import SmartDPSS
from repro.exceptions import HorizonMismatchError
from repro.sim.engine import Simulator, run_simulation
from tests.conftest import constant_traces


class ScriptedController(Controller):
    """Returns fixed decisions; used to probe engine physics."""

    def __init__(self, gbef: float = 0.0, grt: float = 0.0,
                 gamma: float = 0.0):
        self.gbef = gbef
        self.grt = grt
        self.gamma = gamma

    def begin_horizon(self, system):
        self.system = system

    def plan_long_term(self, obs):
        return self.gbef

    def real_time(self, obs):
        return RealTimeDecision(grt=self.grt, gamma=self.gamma)


class GreedyOverbuyer(ScriptedController):
    """Requests absurd quantities to probe engine clamping."""

    def plan_long_term(self, obs):
        return 1e9

    def real_time(self, obs):
        return RealTimeDecision(grt=1e9, gamma=1.0)


def tiny_system(**overrides):
    defaults = dict(days=2)
    defaults.update(overrides)
    return paper_system_config(**defaults)


class TestConstruction:
    def test_short_traces_rejected(self):
        system = tiny_system()
        with pytest.raises(HorizonMismatchError):
            Simulator(system, ImpatientController(),
                      constant_traces(10))

    def test_mismatched_observed_rejected(self):
        system = tiny_system()
        with pytest.raises(HorizonMismatchError):
            Simulator(system, ImpatientController(),
                      constant_traces(48),
                      observed=constant_traces(49))


class TestBalanceEquation:
    def test_eq4_holds_every_slot(self):
        # s + bdc - brc = dds_served + sdt + W  (eq. 4), per slot.
        system = tiny_system()
        traces = constant_traces(48, demand_ds=1.0, demand_dt=0.4,
                                 renewable=0.1)
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces)
        s = result.series
        supply = (s["gbef_rate"] + s["grt"] + s["renewable_used"])
        lhs = supply + s["discharge"] - s["charge"]
        rhs = s["served_ds"] + s["served_dt"] + s["waste"]
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_battery_energy_conservation(self):
        system = tiny_system()
        traces = constant_traces(48)
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces)
        s = result.series
        level = system.initial_battery
        for i in range(48):
            level = level + system.eta_c * s["charge"][i] \
                - system.eta_d * s["discharge"][i]
            assert s["battery_level"][i] == pytest.approx(level,
                                                          abs=1e-9)


class TestClamping:
    def test_overbuyer_respects_grid_cap(self):
        system = tiny_system()
        traces = constant_traces(48)
        result = run_simulation(system, GreedyOverbuyer(), traces)
        s = result.series
        draw = s["gbef_rate"] + s["grt"]
        assert np.all(draw <= system.p_grid + 1e-9)

    def test_overbuyer_respects_supply_cap(self):
        system = tiny_system()
        traces = constant_traces(48, renewable=1.0)
        result = run_simulation(system, GreedyOverbuyer(), traces)
        s = result.series
        supply = s["gbef_rate"] + s["grt"] + s["renewable_used"]
        assert np.all(supply <= system.s_max + 1e-9)

    def test_battery_never_leaves_range(self):
        system = tiny_system()
        traces = constant_traces(48, demand_ds=1.8, renewable=0.0)
        result = run_simulation(system, GreedyOverbuyer(), traces)
        lo, hi = result.battery_range
        assert lo >= system.b_min - 1e-9
        assert hi <= system.b_max + 1e-9


class TestServicePriority:
    def test_ds_served_before_dt(self):
        # Supply only covers dds: deferred service must be cut first.
        system = tiny_system()
        traces = constant_traces(48, demand_ds=1.0, demand_dt=0.5,
                                 renewable=0.0)
        controller = ScriptedController(gbef=24.0, grt=0.0, gamma=1.0)
        result = run_simulation(system, controller, traces)
        assert result.availability == 1.0
        # gbef/T = 1.0 exactly covers dds; after the battery drains,
        # nothing is left for the queue.
        assert result.series["served_dt"][-1] == pytest.approx(0.0)

    def test_unserved_recorded_when_impossible(self):
        # Demand beyond Pgrid + battery: availability must degrade and
        # be reported, never silently fixed.
        system = paper_system_config(days=2).replace(p_grid=0.5,
                                                     s_max=1.0)
        traces = constant_traces(48, demand_ds=1.5, demand_dt=0.0,
                                 renewable=0.0)
        result = run_simulation(system, ImpatientController(), traces)
        assert result.availability < 1.0
        assert result.unserved_ds_total > 0.0


class TestCycleBudget:
    def test_budget_stops_battery(self):
        system = tiny_system(cycle_budget=3)
        traces = constant_traces(48)
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces)
        assert result.battery_operations <= 3

    def test_no_budget_unconstrained(self):
        system = tiny_system()
        traces = constant_traces(48)
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces)
        assert result.battery_operations >= 0


class TestAccounting:
    def test_lt_cost_booked_per_slot(self):
        system = tiny_system()
        traces = constant_traces(48, price_lt=40.0)
        controller = ScriptedController(gbef=24.0)
        result = run_simulation(system, controller, traces)
        # Rate 1.0 at 40 $/MWh booked every slot.
        assert np.allclose(result.series["cost_lt"], 40.0)
        assert result.costs.long_term == pytest.approx(48 * 40.0)

    def test_rt_cost_uses_true_prices(self):
        system = tiny_system()
        true = constant_traces(48, price_rt=50.0, demand_ds=1.0,
                               renewable=0.0)
        # The controller *sees* half prices, but pays true ones.
        observed = true.replace(price_rt=true.price_rt * 0.5)
        controller = ScriptedController(gbef=0.0, grt=1.0)
        result = Simulator(system, controller, true,
                           observed=observed).run()
        expected = result.series["grt"] * 50.0
        assert np.allclose(result.series["cost_rt"], expected)

    def test_waste_penalized(self):
        system = tiny_system()
        traces = constant_traces(48, demand_ds=0.2, demand_dt=0.0,
                                 renewable=0.0, price_lt=40.0)
        controller = ScriptedController(gbef=24.0)  # rate 1.0 vs 0.2
        result = run_simulation(system, controller, traces)
        assert result.waste_total > 0.0
        assert result.costs.waste == pytest.approx(
            result.waste_total * system.waste_penalty)

    def test_meta_propagated(self):
        system = tiny_system()
        traces = constant_traces(48)
        result = run_simulation(system, ImpatientController(), traces)
        assert result.meta["traces"]["source"] == "constant"


class TestDeterminism:
    def test_same_inputs_same_outputs(self, small_system,
                                      small_traces):
        a = run_simulation(small_system,
                           SmartDPSS(paper_controller_config()),
                           small_traces)
        b = run_simulation(small_system,
                           SmartDPSS(paper_controller_config()),
                           small_traces)
        assert a.total_cost == b.total_cost
        assert np.array_equal(a.series["backlog"],
                              b.series["backlog"])
