"""Shared plumbing for the per-figure experiment modules.

Centralizes scenario construction (system + traces + controllers) so
every figure runs on the identical setup the paper fixes in Section
VI-A, and exposes small run helpers returning
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ImpatientController, OfflineOptimal
from repro.config.control import SmartDPSSConfig
from repro.config.presets import paper_controller_config, paper_system_config
from repro.config.system import SystemConfig
from repro.core.smartdpss import SmartDPSS
from repro.rng import DEFAULT_SEED
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.traces.base import TraceSet
from repro.traces.library import make_paper_traces

#: V values of the paper's Fig. 6(a,b) sweep.
PAPER_V_SWEEP = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: T values (hours) of the paper's Fig. 6(c,d) sweep.  A 30-day horizon
#: divides evenly by every value (744 h does not divide by 48).
PAPER_T_SWEEP = (3, 6, 12, 24, 48, 72, 144)
PAPER_T_SWEEP_DAYS = 30

#: ε values of Fig. 7.
PAPER_EPSILON_SWEEP = (0.25, 0.5, 1.0, 2.0)

#: Battery sizes (minutes of peak demand) of Fig. 7.
PAPER_BATTERY_SWEEP = (0.0, 15.0, 30.0)

#: Renewable penetration levels of Fig. 8.
PAPER_PENETRATION_SWEEP = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Demand-variation scales of Fig. 8 (1.0 = the raw trace).
PAPER_VARIATION_SWEEP = (0.0, 0.5, 1.0, 1.5, 2.0)

#: Expansion factors of Fig. 10.
PAPER_BETA_SWEEP = (1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class Scenario:
    """A fully built experimental setting."""

    system: SystemConfig
    traces: TraceSet
    seed: int


def build_scenario(seed: int = DEFAULT_SEED,
                   days: int = 31,
                   fine_slots_per_coarse: int = 24,
                   battery_minutes: float = 15.0) -> Scenario:
    """Construct the paper's evaluation setting (Section VI-A)."""
    system = paper_system_config(
        battery_minutes=battery_minutes, days=days,
        fine_slots_per_coarse=fine_slots_per_coarse)
    traces = make_paper_traces(system, seed=seed)
    return Scenario(system=system, traces=traces, seed=seed)


def run_smartdpss(scenario: Scenario,
                  config: SmartDPSSConfig | None = None,
                  observed: TraceSet | None = None,
                  system: SystemConfig | None = None,
                  ) -> SimulationResult:
    """Run SmartDPSS on a scenario (optionally with noisy observations)."""
    controller = SmartDPSS(config or paper_controller_config())
    return Simulator(system or scenario.system, controller,
                     scenario.traces, observed=observed).run()


def run_impatient(scenario: Scenario,
                  system: SystemConfig | None = None) -> SimulationResult:
    """Run the Impatient baseline on a scenario."""
    return Simulator(system or scenario.system, ImpatientController(),
                     scenario.traces).run()


def run_offline(scenario: Scenario,
                system: SystemConfig | None = None) -> SimulationResult:
    """Run the clairvoyant offline benchmark on a scenario."""
    controller = OfflineOptimal(scenario.traces)
    return Simulator(system or scenario.system, controller,
                     scenario.traces).run()
