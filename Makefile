# Developer entry points.  Everything assumes the in-repo layout
# (PYTHONPATH=src); no installation required.

PY := PYTHONPATH=src python

.PHONY: test test-fast test-equivalence test-backend test-telemetry \
	test-faults test-lint test-noise lint typecheck bench-smoke \
	bench-batch bench-fleet bench-traces bench-plan bench-backend \
	bench-offline bench-telemetry bench-faults bench-noise benchmarks

# Tier-1 verify: the full suite, fail-fast.
test:
	$(PY) -m pytest -x -q

# Quick inner loop: skip the long-horizon integration tests.
test-fast:
	$(PY) -m pytest -x -q -m "not slow"

# Just the cross-engine equivalence harness + golden fixtures.
test-equivalence:
	$(PY) -m pytest -q -m equivalence

# Optional-backend tests (CuPy/JAX); they skip cleanly when the
# libraries are absent, so this target always passes on a NumPy-only
# install.
test-backend:
	$(PY) -m pytest -q -m backend

# Telemetry subsystem only: collectors, manifests, on/off bit-identity
# (the `telemetry` marker; `make test` runs these as part of tier-1).
test-telemetry:
	$(PY) -m pytest -q -m telemetry

# Chaos suite only: deterministic fault injection through every fleet
# recovery path — retry, bisection, quarantine, pool respawn, torn
# writes (the `faults` marker; `make test` runs these as part of
# tier-1).
test-faults:
	$(PY) -m pytest -q -m faults

# Lint suite only: rule fixtures + the src/repro clean gate (the
# `lint` marker; `make test` runs these as part of tier-1).
test-lint:
	$(PY) -m pytest -q -m lint

# Observation layer only: streamed noise/sensor-fault models, chunk
# invariance, streamed == in-memory equivalence and robustness sweeps
# (the `noise` marker; `make test` runs these as part of tier-1).
test-noise:
	$(PY) -m pytest -q -m noise

# The repo's own AST linter over the library source.  Exit 0 means
# every invariant in src/repro/lint/README.md holds (modulo inline
# waivers and the checked-in lint-baseline.txt).
lint:
	$(PY) -m repro.lint src/repro

# Static type check of the clean leaf modules (see mypy.ini).  mypy is
# an optional dev dependency (`pip install repro[dev]`); when it is
# not installed this target skips instead of failing, so `make
# typecheck` is safe to chain in CI recipes on minimal images.
typecheck:
	@$(PY) -c "import mypy" 2>/dev/null \
		&& $(PY) -m mypy --config-file mypy.ini \
		|| echo "mypy not installed; skipping (pip install repro[dev])"

# Tiny batch-vs-serial canary: fails if the batch engine errors,
# diverges from the scalar engine, or regresses past 2x serial.
bench-smoke:
	$(PY) benchmarks/smoke.py

# Full measurement on the fig10 scaling workload; writes BENCH_batch.json.
bench-batch:
	$(PY) benchmarks/bench_batch.py

# Fleet subsystem: streamed peak-memory + shard-count scaling on a
# 10^4-scenario sweep; writes BENCH_fleet.json.
bench-fleet:
	$(PY) benchmarks/bench_fleet.py

# Trace kernels: scalar loops vs vectorized batch kernels, per
# component and end-to-end on the streamed sweep; writes
# BENCH_traces.json.
bench-traces:
	$(PY) benchmarks/bench_traces.py

# Planning boundary: scalar-loop planning vs the vectorized batch
# planning layer, per stage and end-to-end; writes BENCH_plan.json.
bench-plan:
	$(PY) benchmarks/bench_plan.py

# Array-backend layer: allocation-style reference vs the preallocated
# slot-workspace path, per stage and end-to-end per backend (CuPy/JAX
# record skips when absent); writes BENCH_backend.json.
bench-backend:
	$(PY) benchmarks/bench_backend.py

# Offline baseline at fleet scale: batched structure-stamped LP
# solves + one vectorized plan replay, gated on batched == scalar;
# writes BENCH_offline.json.
bench-offline:
	$(PY) benchmarks/bench_offline.py

# Telemetry overhead: instrumented vs uninstrumented 10^4-scenario
# streamed sweep, paired per shard, gated on bit-identical records and
# <= 2% CPU overhead; writes BENCH_telemetry.json.
bench-telemetry:
	$(PY) benchmarks/bench_telemetry.py

# Fault-harness overhead: disarmed vs armed-but-never-firing plan on
# the 10^4-scenario streamed sweep, paired per shard, gated on
# bit-identical records and <= 2% CPU overhead; writes
# BENCH_faults.json.
bench-faults:
	$(PY) benchmarks/bench_faults.py

# Observation-layer overhead: noise-off vs armed-but-quiet uniform
# model (rel_error=0) on the streamed sweep, paired per shard, gated
# on bit-identical noise-off records and <= 2% CPU overhead; writes
# BENCH_noise.json.
bench-noise:
	$(PY) benchmarks/bench_noise.py

# Figure-regeneration benchmarks (pytest-benchmark suite).
benchmarks:
	$(PY) -m pytest benchmarks -q
