"""R005 wallclock-hygiene: clock reads live only in repro.telemetry.

Fleet records must be a pure function of (spec, seed, code) — that is
what makes resume/replay bit-identical and lets the equivalence suite
compare engines at all.  A clock read on a record-producing path is
the classic way that property quietly dies ("just stamp the record
with the time...").  The discipline: :mod:`repro.telemetry` owns the
clock; anything else that legitimately needs elapsed time (shard
timing, CLI progress rates) calls
:func:`repro.telemetry.monotonic` — one substitutable indirection —
and the values it produces stay out of result records.

Scope: everything under ``src/repro`` except ``repro/telemetry/``.
Flagged references (calls or bare attribute reads):

* ``time.time``/``time.time_ns``, ``time.monotonic``/``_ns``,
  ``time.perf_counter``/``_ns``, ``time.process_time``/``_ns``,
  ``time.clock_gettime``;
* wallclock formatting reads: ``time.localtime``, ``time.gmtime``,
  ``time.strftime``, ``time.ctime``;
* ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today`` /
  ``date.today`` (any aliasing of the ``datetime`` module, e.g.
  ``_datetime.datetime.now``).

``time.sleep`` is deliberately allowed — it delays, it does not
observe the clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule, dotted_name

_EXEMPT_FRAGMENT = "repro/telemetry/"

_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns", "clock_gettime", "clock_gettime_ns",
    "localtime", "gmtime", "strftime", "ctime",
})

_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


class WallclockHygiene(Rule):
    id = "R005"
    name = "wallclock-hygiene"
    summary = ("no clock reads outside repro/telemetry/; use "
               "repro.telemetry.monotonic for elapsed time")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _EXEMPT_FRAGMENT in ctx.posix:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name is None:
                continue
            parts = name.split(".")
            attr = parts[-1]
            base = parts[:-1]
            if attr in _TIME_ATTRS and base and base[-1] == "time":
                yield self.finding(
                    ctx, node,
                    f"clock read `{name}` outside repro/telemetry/; "
                    "record-producing paths must be clock-free — use "
                    "repro.telemetry.monotonic() for elapsed time")
            elif attr in _DATETIME_ATTRS and base and any(
                    part in ("datetime", "date") or
                    part.endswith("datetime")
                    for part in base):
                yield self.finding(
                    ctx, node,
                    f"wallclock read `{name}` outside repro/telemetry/; "
                    "timestamps belong to the telemetry manifest layer")


RULE = WallclockHygiene()
