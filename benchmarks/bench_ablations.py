"""Bench the design-decision ablations (DESIGN.md §2, Abl-1..5).

* the printed P5 objective is strictly worse than the derived one
  (quantifying the paper's sign typo);
* the cycle budget degrades gracefully;
* the battery trade margin prevents unprofitable churn;
* pre-buying for deferrable arrivals loses money versus V-gated
  real-time service;
* SmartDPSS beats a generic price-threshold heuristic.
"""

from conftest import emit, run_once

from repro.experiments.ablations import render, run_ablations


def test_ablations(benchmark):
    result = run_once(benchmark, run_ablations)
    emit("ablations", render(result))

    objective = {r.label: r for r in result.study("objective")}
    assert (objective["derived"].time_avg_cost
            < objective["paper"].time_avg_cost)
    assert (objective["derived"].avg_delay_slots
            < objective["paper"].avg_delay_slots)

    budgets = result.study("cycle_budget")
    # Tighter budgets are respected...
    assert budgets[-1].battery_ops <= 31
    # ...at bounded extra cost (battery is small: < 1% swing).
    costs = [r.time_avg_cost for r in budgets]
    assert max(costs) < min(costs) * 1.01

    arrivals = {r.label: r for r in result.study("p4_arrivals")}
    assert (arrivals["defer"].time_avg_cost
            <= arrivals["plan"].time_avg_cost * 1.005)

    myopic = result.study("baseline")[0]
    derived = objective["derived"]
    assert derived.time_avg_cost < myopic.time_avg_cost
