"""Discrete-time simulation engine for the DPSS.

The engine (:mod:`repro.sim.engine`) owns every piece of physical state
— UPS battery, backlog queue, market ledgers, the interconnect — and
drives an arbitrary :class:`~repro.core.interfaces.Controller` over a
:class:`~repro.traces.base.TraceSet`, resolving the supply-demand
balance (paper eq. 4) with hard clamps so no policy can violate a
physical constraint.  Per-slot series land in a
:class:`~repro.sim.recorder.Recorder`; summaries (cost breakdown, delay
statistics, availability, battery cycling) in a
:class:`~repro.sim.results.SimulationResult`.
"""

from repro.sim.batch import (
    BatchSimulator,
    RunSpec,
    ScalarControllerBatch,
    simulate_many,
)
from repro.sim.engine import Simulator, run_simulation
from repro.sim.metrics import CostBreakdown, summarize_costs
from repro.sim.outages import (
    OutageSchedule,
    ride_through_report,
    sample_outages,
)
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.sweep import Sweep, SweepTable

__all__ = [
    "Simulator",
    "run_simulation",
    "BatchSimulator",
    "RunSpec",
    "ScalarControllerBatch",
    "simulate_many",
    "Recorder",
    "SimulationResult",
    "CostBreakdown",
    "summarize_costs",
    "OutageSchedule",
    "sample_outages",
    "ride_through_report",
    "Sweep",
    "SweepTable",
]
