"""Property-based tests: engine physics under arbitrary traces/policies.

Whatever the (random) traces and whatever a (random scripted) policy
asks for, the engine must maintain: the balance equation (4), battery
range (7), grid cap (5), non-negative accounting, and exact
delay-tolerant energy conservation.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config.presets import paper_system_config
from repro.core.interfaces import Controller, RealTimeDecision
from repro.sim.engine import run_simulation
from repro.traces.base import TraceSet

N_SLOTS = 48  # two coarse days


class RandomScriptController(Controller):
    """Plays a pre-drawn decision script (no physics awareness)."""

    def __init__(self, plans, decisions):
        self.plans = list(plans)
        self.decisions = list(decisions)

    def begin_horizon(self, system):
        self._plan_cursor = 0
        self._decision_cursor = 0

    def plan_long_term(self, obs):
        value = self.plans[self._plan_cursor % len(self.plans)]
        self._plan_cursor += 1
        return value

    def real_time(self, obs):
        grt, gamma = self.decisions[
            self._decision_cursor % len(self.decisions)]
        self._decision_cursor += 1
        return RealTimeDecision(grt=grt, gamma=gamma)


trace_arrays = st.lists(
    st.floats(min_value=0.0, max_value=2.0), min_size=N_SLOTS,
    max_size=N_SLOTS)
price_arrays = st.lists(
    st.floats(min_value=1.0, max_value=200.0), min_size=N_SLOTS,
    max_size=N_SLOTS)
plans = st.lists(st.floats(min_value=0.0, max_value=60.0),
                 min_size=1, max_size=2)
decisions = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=3.0),
              st.floats(min_value=0.0, max_value=1.0)),
    min_size=1, max_size=12)


def build_traces(ds, dt, renewable, prices) -> TraceSet:
    return TraceSet(
        demand_ds=ds, demand_dt=np.minimum(dt, 1.0),
        renewable=renewable, price_rt=prices,
        price_lt_hourly=np.asarray(prices) * 0.85)


@settings(max_examples=60, deadline=None)
@given(ds=trace_arrays, dt=trace_arrays, renewable=trace_arrays,
       prices=price_arrays, plan=plans, script=decisions)
def test_engine_invariants(ds, dt, renewable, prices, plan, script):
    system = paper_system_config(days=2)
    traces = build_traces(ds, dt, renewable, prices)
    controller = RandomScriptController(plan, script)
    result = run_simulation(system, controller, traces)
    s = result.series

    # Balance equation (4): supply + bdc − brc = served + waste.
    supply = s["gbef_rate"] + s["grt"] + s["renewable_used"]
    lhs = supply + s["discharge"] - s["charge"]
    rhs = s["served_ds"] + s["served_dt"] + s["waste"]
    assert np.allclose(lhs, rhs, atol=1e-8)

    # Grid cap (5) on every slot.
    assert np.all(s["gbef_rate"] + s["grt"]
                  <= system.p_grid + 1e-9)

    # Battery range (7).
    assert np.all(s["battery_level"] >= system.b_min - 1e-9)
    assert np.all(s["battery_level"] <= system.b_max + 1e-9)

    # Everything non-negative.
    for name in ("cost_total", "waste", "charge", "discharge",
                 "served_ds", "served_dt", "unserved_ds", "backlog"):
        assert np.all(s[name] >= -1e-12), name

    # Delay-tolerant energy conservation.
    arrived = float(traces.demand_dt[:N_SLOTS].sum())
    served = float(s["served_dt"].sum())
    assert arrived == pytest.approx(served + result.final_backlog,
                                    abs=1e-6)

    # Served + unserved delay-sensitive equals the trace.
    ds_total = float(traces.demand_ds[:N_SLOTS].sum())
    assert ds_total == pytest.approx(
        float(s["served_ds"].sum() + s["unserved_ds"].sum()),
        abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(ds=trace_arrays, dt=trace_arrays, renewable=trace_arrays,
       prices=price_arrays)
def test_smartdpss_never_violates_availability_within_capacity(
        ds, dt, renewable, prices):
    """When Pgrid can carry dds alone, SmartDPSS always serves it."""
    from repro.config.presets import paper_controller_config
    from repro.core.smartdpss import SmartDPSS
    system = paper_system_config(days=2)
    capped_ds = np.minimum(ds, system.p_grid)
    traces = build_traces(capped_ds, dt, renewable, prices)
    result = run_simulation(
        system, SmartDPSS(paper_controller_config()), traces)
    assert result.availability == pytest.approx(1.0, abs=1e-9)
