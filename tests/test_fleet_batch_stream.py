"""BatchTraceStream / TraceBlock: the vectorized fleet trace path."""

import numpy as np
import pytest

from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.smartdpss import SmartDPSS
from repro.exceptions import ConfigurationError, TraceError
from repro.fleet.engine import StreamingBatchSimulator, StreamRunSpec
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import ScenarioSpec, grid_specs
from repro.fleet.stream import (
    ArrayTraceStream,
    BatchTraceStream,
    StreamingPaperTraces,
)
from repro.traces.base import SERIES_FIELDS, TraceBlock
from repro.traces.solar import SolarModel

pytestmark = pytest.mark.fleet


def _streams(n_slots=96, batch=4, clip=None):
    return [StreamingPaperTraces(n_slots, seed=seed, clip_p_grid=clip)
            for seed in range(batch)]


class TestBatchTraceStream:
    def test_matches_per_scenario_cursors(self):
        streams = _streams(batch=5, clip=1.5)
        cursor = BatchTraceStream(streams).open()
        references = [stream.open() for stream in streams]
        for chunk in (17, 40, 39):
            block = cursor.read(chunk)
            windows = [ref.read(chunk) for ref in references]
            for name in SERIES_FIELDS:
                assert np.array_equal(
                    getattr(block, name),
                    np.stack([getattr(w, name) for w in windows])), name

    def test_heterogeneous_models_stack(self):
        streams = [StreamingPaperTraces(
            48, seed=seed,
            solar_model=SolarModel(capacity_mw=1.0 + seed))
            for seed in range(3)]
        block = BatchTraceStream(streams).open().read(48)
        singles = [stream.open().read(48) for stream in streams]
        for index, window in enumerate(singles):
            assert np.array_equal(block.renewable[index],
                                  window.renewable)

    def test_for_streams_rejects_non_kernel_sources(self):
        paper = _streams(batch=2)
        array = ArrayTraceStream(paper[0].materialize())
        assert BatchTraceStream.for_streams([paper[0], array]) is None
        assert BatchTraceStream.for_streams([]) is None
        assert BatchTraceStream.for_streams(paper) is not None

    def test_read_past_end_raises(self):
        cursor = BatchTraceStream(_streams(n_slots=24)).open()
        cursor.read(20)
        with pytest.raises(TraceError):
            cursor.read(5)

    def test_read_needs_positive_slots(self):
        cursor = BatchTraceStream(_streams()).open()
        with pytest.raises(ConfigurationError):
            cursor.read(0)

    def test_clip_meta_counts_per_scenario(self):
        streams = _streams(batch=3, clip=1.2)
        block = BatchTraceStream(streams).open().read(96)
        counts = block.meta["peak_clip_slots"]
        assert counts.shape == (3,)
        for index, stream in enumerate(streams):
            window = stream.open().read(96)
            assert counts[index] == window.meta["peak_clip_slots"]
            scenario = block.scenario(index)
            assert scenario.meta["peak_clip_slots"] \
                == window.meta["peak_clip_slots"]
            assert scenario.meta["seed"] == stream.seed


class TestTraceBlock:
    def _block(self, **overrides):
        data = {name: np.ones((2, 6)) for name in SERIES_FIELDS}
        data.update(overrides)
        return TraceBlock(**data)

    def test_shape_and_accessors(self):
        block = self._block()
        assert block.n_scenarios == 2
        assert block.n_slots == 6
        scenario = block.scenario(1)
        assert scenario.n_slots == 6

    def test_rejects_one_dimensional_series(self):
        with pytest.raises(TraceError):
            self._block(demand_ds=np.ones(6))

    def test_rejects_negative_and_nonfinite(self):
        bad = np.ones((2, 6))
        bad[1, 3] = -0.5
        with pytest.raises(TraceError):
            self._block(renewable=bad)
        bad = np.ones((2, 6))
        bad[0, 0] = np.nan
        with pytest.raises(TraceError):
            self._block(price_rt=bad)

    def test_coarse_prices_match_scenario_rows(self):
        hourly = np.arange(12.0).reshape(2, 6) + 1.0
        block = self._block(price_lt_hourly=hourly)
        coarse = block.coarse_prices(3)
        for index in range(2):
            assert np.array_equal(
                coarse[index], block.scenario(index).coarse_prices(3))
        with pytest.raises(Exception):
            block.coarse_prices(5)


class TestEngineWiring:
    def _runs(self, batch=3):
        system = paper_system_config(days=2, fine_slots_per_coarse=6)
        return [
            StreamRunSpec(system=system,
                          controller=SmartDPSS(paper_controller_config()),
                          stream=StreamingPaperTraces(
                              system.horizon_slots, seed=seed,
                              clip_p_grid=system.p_grid))
            for seed in range(batch)]

    def test_batch_and_scalar_paths_identical(self):
        batched = StreamingBatchSimulator(self._runs(),
                                          chunk_coarse=2).run()
        scalar = StreamingBatchSimulator(self._runs(), chunk_coarse=2,
                                         batch_traces=False).run()
        assert [m.as_dict() for m in batched] \
            == [m.as_dict() for m in scalar]

    def test_batch_source_detection(self):
        engine = StreamingBatchSimulator(self._runs())
        assert engine._batch_source is not None
        engine = StreamingBatchSimulator(self._runs(),
                                         batch_traces=False)
        assert engine._batch_source is None

    def test_array_stream_falls_back_to_cursors(self):
        system = paper_system_config(days=1, fine_slots_per_coarse=6)
        stream = StreamingPaperTraces(system.horizon_slots, seed=0,
                                      clip_p_grid=system.p_grid)
        runs = [StreamRunSpec(
            system=system,
            controller=SmartDPSS(paper_controller_config()),
            stream=ArrayTraceStream(stream.materialize()))]
        engine = StreamingBatchSimulator(runs)
        assert engine._batch_source is None
        assert len(engine.run()) == 1

    def test_fleet_runner_batch_traces_knob(self):
        template = ScenarioSpec(
            system={"preset": "paper", "days": 1,
                    "fine_slots_per_coarse": 6},
            trace={"kind": "stream"})
        specs = grid_specs(template, "controller.v", [0.5, 2.0],
                           seeds=(0, 1))
        fast = FleetRunner(specs, batch_size=4).run()
        slow = FleetRunner(specs, batch_size=4,
                           batch_traces=False).run()
        assert fast == slow
        assert all(record["engine"] == "stream" for record in fast)


class TestPlanningTailGuard:
    """A streamed window arriving without the T-slot planning tail must
    fail loudly: before the guard, the boundary lookback slice went
    negative and silently wrapped to the wrong (or empty) profile."""

    def _runs(self, batch=2):
        system = paper_system_config(days=2, fine_slots_per_coarse=6)
        return [
            StreamRunSpec(system=system,
                          controller=SmartDPSS(paper_controller_config()),
                          stream=StreamingPaperTraces(
                              system.horizon_slots, seed=seed,
                              clip_p_grid=system.p_grid))
            for seed in range(batch)]

    def test_dropped_tail_raises_instead_of_wrapping(self):
        from repro.exceptions import HorizonMismatchError

        class TailDropping(StreamingBatchSimulator):
            def _install_chunk(self, columns, price_lt, start, stop,
                               tail, price_lt_fine=None):
                return super()._install_chunk(
                    columns, price_lt, start, stop, None,
                    price_lt_fine=price_lt_fine)

        with pytest.raises(HorizonMismatchError, match="planning tail"):
            TailDropping(self._runs(), chunk_coarse=2).run()

    def test_normal_chunkings_unaffected(self):
        reference = StreamingBatchSimulator(self._runs(),
                                            chunk_coarse=8).run()
        for chunk_coarse in (1, 3):
            chunked = StreamingBatchSimulator(
                self._runs(), chunk_coarse=chunk_coarse).run()
            assert [m.as_dict() for m in chunked] \
                == [m.as_dict() for m in reference]
