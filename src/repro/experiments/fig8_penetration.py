"""Fig. 8 — cost versus renewable penetration and demand variation.

Two sweeps at ``V = 1, T = 24, ε = 0.5, Bmax = 15 min``:

* **renewable penetration** 0 → 100% of total demand: the operation
  cost should fall sharply, since renewable energy is harvested
  cost-free (the paper excludes construction cost);
* **demand variation**: demand fluctuations stretched around a fixed
  mean.  Cost should rise mildly with variation — bigger approximation
  errors, harder procurement — but the battery and the two-timescale
  markets absorb most of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.config.presets import paper_controller_config
from repro.core.smartdpss import SmartDPSS
from repro.experiments.common import (
    PAPER_PENETRATION_SWEEP,
    PAPER_VARIATION_SWEEP,
    build_scenario,
    simulate_runs,
)
from repro.rng import DEFAULT_SEED
from repro.sim.batch import RunSpec
from repro.traces.scaling import (
    rescale_renewable_penetration,
    reshape_demand_variation,
)


@dataclass(frozen=True)
class SweepRow:
    """One sweep point (x value, cost, delay, waste)."""

    x: float
    time_avg_cost: float
    avg_delay_slots: float
    waste_mwh: float


@dataclass(frozen=True)
class Fig8Result:
    """Both Fig. 8 sweeps."""

    penetration_rows: tuple[SweepRow, ...]
    variation_rows: tuple[SweepRow, ...]

    @property
    def penetration_cost_decreasing(self) -> bool:
        """Cost should fall as penetration rises."""
        costs = [r.time_avg_cost for r in self.penetration_rows]
        return costs[-1] < costs[0]

    @property
    def variation_cost_increasing(self) -> bool:
        """Cost should rise (mildly) with demand variation."""
        costs = [r.time_avg_cost for r in self.variation_rows]
        return costs[-1] > costs[0]


def run_fig8(seed: int = DEFAULT_SEED, days: int = 31) -> Fig8Result:
    """Run the penetration and variation sweeps as one batched fleet."""
    scenario = build_scenario(seed=seed, days=days)
    config = paper_controller_config()

    pen_traces = [rescale_renewable_penetration(scenario.traces, level)
                  for level in PAPER_PENETRATION_SWEEP]
    var_traces = [reshape_demand_variation(scenario.traces, scale)
                  for scale in PAPER_VARIATION_SWEEP]
    specs = [RunSpec(system=scenario.system,
                     controller=SmartDPSS(config), traces=traces)
             for traces in (*pen_traces, *var_traces)]
    results = simulate_runs(specs)

    penetration_rows = [
        SweepRow(x=level,
                 time_avg_cost=result.time_average_cost,
                 avg_delay_slots=result.average_delay_slots,
                 waste_mwh=result.waste_total)
        for level, result in zip(PAPER_PENETRATION_SWEEP, results)]

    variation_rows = [
        SweepRow(x=traces.demand_std,
                 time_avg_cost=result.time_average_cost,
                 avg_delay_slots=result.average_delay_slots,
                 waste_mwh=result.waste_total)
        for traces, result in zip(var_traces,
                                  results[len(pen_traces):])]

    return Fig8Result(penetration_rows=tuple(penetration_rows),
                      variation_rows=tuple(variation_rows))


def render(result: Fig8Result) -> str:
    """Printed form of Fig. 8."""
    pen_rows = [[f"{r.x:.0%}", r.time_avg_cost, r.avg_delay_slots,
                 r.waste_mwh] for r in result.penetration_rows]
    var_rows = [[f"{r.x:.3f}", r.time_avg_cost, r.avg_delay_slots,
                 r.waste_mwh] for r in result.variation_rows]
    parts = [
        format_table(["penetration", "cost/slot", "avg delay", "waste"],
                     pen_rows,
                     title="Fig 8 — renewable penetration sweep"),
        format_table(["demand std", "cost/slot", "avg delay", "waste"],
                     var_rows,
                     title="Fig 8 — demand variation sweep"),
        "shape checks: cost decreasing in penetration = "
        f"{result.penetration_cost_decreasing}, cost increasing in "
        f"variation = {result.variation_cost_increasing}",
    ]
    return "\n\n".join(parts)
