"""Baseline files: grandfathered legacy findings by content fingerprint.

A baseline lets the lint gate demand **zero new findings** while old
debt is paid down incrementally.  Each entry fingerprints one accepted
finding as ``sha256(rule : filename : stripped-source-line)`` — no line
numbers, so unrelated edits above a grandfathered site do not churn the
file; moving, editing or fixing the flagged line invalidates its entry
(the tier-1 gate flags stale entries so paid-down debt gets deleted).

File format — one entry per line, comments mandatory::

    # repro-lint baseline (see repro/lint/README.md)
    R003 repro/legacy/foo.py 0a1b2c3d4e5f  # pre-taxonomy raise, PR 11

The trailing ``#`` comment is required: every grandfathered finding
must say *why* it is allowed to exist, mirroring the inline-suppression
rule.  Entries without a justification are rejected at load time.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.exceptions import ConfigurationError

_ENTRY_RE = re.compile(
    r"^(?P<rule>R\d{3})\s+(?P<path>\S+)\s+(?P<digest>[0-9a-f]{12})"
    r"\s*(?:#\s*(?P<comment>.*\S))?\s*$")

_HEADER = ("# repro-lint baseline: accepted legacy findings, one per "
           "line as\n"
           "#   <rule> <path> <fingerprint>  # <justification>\n"
           "# Regenerate entries with: python -m repro.lint "
           "--write-baseline <file> <paths>\n")


def fingerprint(rule: str, path: str, snippet: str) -> str:
    """12-hex content fingerprint of one finding.

    Keyed on the file's *name* rather than its full path so the same
    baseline matches whether the tree is linted as ``src/repro`` or
    from another working directory.
    """
    name = path.rsplit("/", 1)[-1]
    payload = f"{rule}:{name}:{snippet.strip()}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:12]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    digest: str
    comment: str

    def line(self) -> str:
        return f"{self.rule} {self.path} {self.digest}  # {self.comment}"


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries = list(entries)
        self._digests = {(e.rule, e.digest) for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding) -> bool:
        """Whether ``finding`` is grandfathered by this baseline."""
        digest = fingerprint(finding.rule, finding.path, finding.snippet)
        return (finding.rule, digest) in self._digests

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Parse a baseline file; malformed/unjustified entries raise."""
        text = Path(path).read_text(encoding="utf-8")
        entries = []
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            match = _ENTRY_RE.match(line)
            if match is None:
                raise ConfigurationError(
                    f"{path}:{number}: malformed baseline entry "
                    f"{line!r}; expected '<rule> <path> <12-hex>  "
                    f"# <justification>'")
            comment = match.group("comment")
            if not comment:
                raise ConfigurationError(
                    f"{path}:{number}: baseline entry has no "
                    f"justification comment; every grandfathered "
                    f"finding must say why it is accepted")
            entries.append(BaselineEntry(
                rule=match.group("rule"), path=match.group("path"),
                digest=match.group("digest"), comment=comment))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable,
                      comment: str = "grandfathered") -> "Baseline":
        """A baseline accepting exactly ``findings`` (for
        ``--write-baseline``); the shared placeholder comment is meant
        to be hand-edited into real per-entry justifications."""
        entries = [BaselineEntry(
            rule=f.rule, path=f.path,
            digest=fingerprint(f.rule, f.path, f.snippet),
            comment=comment) for f in findings]
        return cls(entries)

    def dump(self, path: str | Path) -> None:
        body = "".join(entry.line() + "\n"
                       for entry in sorted(
                           self.entries,
                           key=lambda e: (e.path, e.rule, e.digest)))
        Path(path).write_text(_HEADER + body, encoding="utf-8")
