"""Per-slot series recording.

The recorder pre-allocates one float array per tracked quantity and is
filled by the engine as the horizon advances.  Everything the paper
plots (cost components, queue backlog, battery level, purchases, waste)
is recorded, so any figure can be regenerated from a single run.
"""

from __future__ import annotations

import numpy as np
from repro.exceptions import ConfigurationError

#: Quantities tracked per fine slot (all MWh or dollars).
SERIES_NAMES = (
    "cost_lt",          # gbef/T · plt booked this slot ($)
    "cost_rt",          # grt · prt ($)
    "cost_battery",     # n(τ) · Cb ($)
    "cost_waste",       # W(τ) · waste_penalty ($)
    "cost_total",       # sum of the four components ($)
    "gbef_rate",        # advance delivery gbef/T (MWh)
    "grt",              # real-time purchase (MWh)
    "renewable_used",   # renewable energy accepted on the bus (MWh)
    "renewable_curtailed",  # renewable clipped by the supply cap (MWh)
    "served_ds",        # delay-sensitive demand served (MWh)
    "served_dt",        # delay-tolerant service sdt (MWh)
    "unserved_ds",      # availability gap (MWh, should stay 0)
    "charge",           # brc (MWh)
    "discharge",        # bdc (MWh)
    "battery_level",    # b(τ+1) after the slot (MWh)
    "waste",            # W(τ) (MWh)
    "backlog",          # Q(τ+1) after the slot (MWh)
    "gamma",            # commanded service fraction
)


class Recorder:
    """Fixed-horizon storage for every tracked per-slot series."""

    def __init__(self, n_slots: int):
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        self.n_slots = n_slots
        self._series = {name: np.zeros(n_slots) for name in SERIES_NAMES}
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Number of slots recorded so far."""
        return self._cursor

    def record(self, **values: float) -> None:
        """Record one slot; unknown keys raise, missing keys stay 0."""
        if self._cursor >= self.n_slots:
            raise IndexError(
                f"recorder full ({self.n_slots} slots)")
        for name, value in values.items():
            if name not in self._series:
                raise KeyError(f"unknown series {name!r}")
            self._series[name][self._cursor] = value
        self._cursor += 1

    def series(self, name: str) -> np.ndarray:
        """Return one recorded series (read-only view)."""
        if name not in self._series:
            raise KeyError(f"unknown series {name!r}")
        array = self._series[name][:self._cursor]
        array.setflags(write=False)
        return array

    def as_dict(self) -> dict[str, np.ndarray]:
        """All series truncated to the recorded length."""
        return {name: self.series(name) for name in SERIES_NAMES}
