"""Grid outage injection and ride-through accounting."""

import numpy as np
import pytest

from repro.baselines.impatient import ImpatientController
from repro.config.presets import paper_controller_config, paper_system_config
from repro.core.smartdpss import SmartDPSS
from repro.sim.engine import Simulator, run_simulation
from repro.sim.outages import (
    OutageSchedule,
    ride_through_report,
    sample_outages,
)
from tests.conftest import constant_traces
from repro.exceptions import ConfigurationError


class TestOutageSchedule:
    def test_mask_covers_events(self):
        schedule = OutageSchedule(n_slots=10, events=((2, 3), (8, 1)))
        mask = schedule.outage_slots
        assert list(np.where(mask)[0]) == [2, 3, 4, 8]
        assert schedule.total_outage_slots == 4

    def test_events_may_overlap(self):
        schedule = OutageSchedule(n_slots=10, events=((2, 3), (3, 3)))
        assert schedule.total_outage_slots == 4

    def test_event_clipped_at_horizon(self):
        schedule = OutageSchedule(n_slots=5, events=((3, 10),))
        assert schedule.total_outage_slots == 2

    def test_invalid_start_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageSchedule(n_slots=5, events=((5, 1),))

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageSchedule(n_slots=5, events=((0, 0),))

    def test_grid_capacity_zero_during_outage(self):
        schedule = OutageSchedule(n_slots=4, events=((1, 2),))
        capacity = schedule.grid_capacity(2.0)
        assert list(capacity) == [2.0, 0.0, 0.0, 2.0]


class TestSampleOutages:
    def test_deterministic_given_rng(self):
        a = sample_outages(744, np.random.default_rng(3),
                           events_per_month=4)
        b = sample_outages(744, np.random.default_rng(3),
                           events_per_month=4)
        assert a.events == b.events

    def test_rate_scales_with_parameter(self):
        rng = np.random.default_rng(5)
        quiet = sample_outages(7440, rng, events_per_month=0.5)
        rng = np.random.default_rng(5)
        busy = sample_outages(7440, rng, events_per_month=20.0)
        assert len(busy.events) > len(quiet.events)

    def test_zero_rate_no_events(self):
        schedule = sample_outages(744, np.random.default_rng(1),
                                  events_per_month=0.0)
        assert schedule.events == ()

    @pytest.mark.parametrize("kwargs", [
        {"n_slots": 0}, {"events_per_month": -1.0},
        {"mean_duration_slots": 0.5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        defaults = dict(n_slots=100, events_per_month=1.0,
                        mean_duration_slots=2.0)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            sample_outages(defaults.pop("n_slots"),
                           np.random.default_rng(0), **defaults)


class TestEngineUnderOutage:
    def outage_run(self, minutes=15.0):
        system = paper_system_config(days=2,
                                     battery_minutes=minutes)
        traces = constant_traces(48, demand_ds=1.0, demand_dt=0.2,
                                 renewable=0.0)
        schedule = OutageSchedule(n_slots=48, events=((20, 2),))
        result = run_simulation(
            system, SmartDPSS(paper_controller_config()), traces,
            grid_capacity=schedule.grid_capacity(system.p_grid))
        return system, result, schedule

    def test_no_grid_draw_during_outage(self):
        _, result, schedule = self.outage_run()
        mask = schedule.outage_slots
        draw = (result.series["gbef_rate"]
                + result.series["grt"])[mask]
        assert np.all(draw == 0.0)

    def test_battery_rides_through(self):
        _, result, schedule = self.outage_run()
        mask = schedule.outage_slots
        assert result.series["discharge"][mask].sum() > 0.0

    def test_unserved_recorded_honestly(self):
        # 2 h of 1 MWh demand vs a 0.5 MWh battery: most is unserved.
        _, result, schedule = self.outage_run()
        report = ride_through_report(result, schedule)
        assert report["ds_unserved_mwh"] > 1.0
        assert report["outage_availability"] < 0.5

    def test_bigger_battery_more_ride_through(self):
        _, small, schedule = self.outage_run(minutes=15.0)
        _, big, _ = self.outage_run(minutes=120.0)
        small_report = ride_through_report(small, schedule)
        big_report = ride_through_report(big, schedule)
        assert (big_report["outage_availability"]
                > small_report["outage_availability"])

    def test_undelivered_contract_not_billed(self):
        _, result, schedule = self.outage_run()
        mask = schedule.outage_slots
        assert np.all(result.series["cost_lt"][mask] == 0.0)

    def test_capacity_length_validated(self):
        system = paper_system_config(days=2)
        traces = constant_traces(48)
        from repro.exceptions import HorizonMismatchError
        with pytest.raises(HorizonMismatchError):
            Simulator(system, ImpatientController(), traces,
                      grid_capacity=np.ones(10))

    def test_negative_capacity_rejected(self):
        system = paper_system_config(days=2)
        traces = constant_traces(48)
        with pytest.raises(ConfigurationError):
            Simulator(system, ImpatientController(), traces,
                      grid_capacity=-np.ones(48))
