"""Exception hierarchy for the SmartDPSS reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
deliberately fine-grained: configuration problems, infeasible control
actions, solver failures and trace-construction errors are distinct
failure modes with distinct remedies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed or inconsistent.

    Raised eagerly at construction time by the config dataclasses so that
    simulations never start with a physically meaningless parameter set
    (e.g. ``b_min > b_max`` or a negative efficiency).
    """


class StateError(ReproError):
    """An operation was invoked before the state it needs existed.

    The lifecycle counterpart of :class:`ConfigurationError`: the
    arguments are fine, but a required prior step has not happened yet
    (reading a virtual queue before its first observation, flushing
    delays before the horizon ended, aggregating an empty result
    store).  The remedy is always "call the missing step first", which
    the message names.
    """


class InfeasibleActionError(ReproError):
    """A control action violates a hard physical constraint.

    The simulation engine clamps recoverable violations (and records
    them); this error is reserved for programming errors such as a
    controller returning a negative purchase quantity.
    """


class SolverError(ReproError):
    """An optimization subproblem could not be solved.

    Carries the solver's status string so failures are diagnosable
    without re-running with extra logging.
    """

    def __init__(self, message: str, status: str | None = None):
        super().__init__(message)
        self.status = status


class InfeasibleProblemError(SolverError):
    """A linear program was proven infeasible."""


class UnboundedProblemError(SolverError):
    """A linear program was proven unbounded."""


class IterationLimitError(SolverError):
    """The solver hit its iteration limit before reaching optimality.

    Unlike infeasibility/unboundedness this is not a statement about
    the model — the returned point is simply not proven optimal, so
    treating it as a solution would silently corrupt the offline
    benchmark.  The remedy is a larger iteration limit or a smaller
    instance, both named in the message.
    """


class TraceError(ReproError):
    """A trace is malformed (wrong length, negative power, NaNs...)."""


class HorizonMismatchError(TraceError):
    """Traces and the simulation horizon disagree on the slot count."""


class TraceCorruptionError(TraceError):
    """A NaN/Inf trace value was detected at a chunk boundary.

    Raised by the streamed engine's per-chunk finiteness scan, naming
    the offending scenario (batch position and seed, when known) and
    the absolute slot so the fleet runner can quarantine exactly that
    scenario instead of bisecting the whole shard.  Fleet errors cross
    the worker process boundary, so :meth:`__reduce__` preserves the
    structured fields through pickling.
    """

    def __init__(self, message: str, scenario: int | None = None,
                 slot: int | None = None, seed: int | None = None):
        super().__init__(message)
        self.scenario = scenario
        self.slot = slot
        self.seed = seed

    def __reduce__(self):
        return (type(self), (self.args[0], self.scenario, self.slot,
                             self.seed))


class ObservationCorruptionError(TraceCorruptionError):
    """A NaN/Inf value was detected in an *observed* trace series.

    The observation layer derives what controllers see from the true
    traces (noise models, sensor faults); corruption there must not be
    confused with corruption of the physics inputs, so this subclass
    names the view (``"observed"``) and the offending series.  It
    inherits the scenario/slot/seed fields — and therefore the fleet
    runner's direct-quarantine short circuit — from
    :class:`TraceCorruptionError`.
    """

    def __init__(self, message: str, scenario: int | None = None,
                 slot: int | None = None, seed: int | None = None,
                 series: str | None = None, view: str = "observed"):
        super().__init__(message, scenario=scenario, slot=slot, seed=seed)
        self.series = series
        self.view = view

    def __reduce__(self):
        return (type(self), (self.args[0], self.scenario, self.slot,
                             self.seed, self.series, self.view))


class FaultInjectionError(ReproError):
    """An error raised on purpose by the fault-injection harness.

    Only :mod:`repro.fleet.faults` raises this; seeing one outside a
    chaos test means an armed :class:`~repro.fleet.faults.FaultPlan`
    leaked into a production run (check ``REPRO_FAULT_PLAN``).
    Picklable across the worker boundary like every fleet error.
    """

    def __init__(self, message: str, site: str | None = None,
                 scenario: object = None):
        super().__init__(message)
        self.site = site
        self.scenario = scenario

    def __reduce__(self):
        return (type(self), (self.args[0], self.site, self.scenario))


class ShardTimeoutError(ReproError):
    """A fleet shard exceeded the runner's per-shard wall-clock budget.

    Raised parent-side only (the worker is terminated, not signalled),
    so it never crosses the process boundary.
    """


class WorkerCrashError(ReproError):
    """A fleet worker process died mid-shard (OOM kill, segfault,
    injected ``worker_kill`` fault).

    The parent wraps the executor's ``BrokenProcessPool`` in this type
    so quarantine records carry a library error taxonomy instead of a
    ``concurrent.futures`` internal.
    """
