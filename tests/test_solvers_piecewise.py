"""Piecewise-linear minimization utilities."""

import numpy as np
import pytest

from repro.solvers.piecewise import (
    box_edge_candidates,
    minimize_over_candidates,
    piecewise_candidates_1d,
)
from repro.exceptions import ConfigurationError


class TestMinimizeOverCandidates:
    def test_finds_minimum(self):
        value, point = minimize_over_candidates(
            lambda x: (x - 2.0) ** 2, [(0.0,), (1.0,), (2.0,), (3.0,)])
        assert point == (2.0,)
        assert value == 0.0

    def test_tie_prefers_earlier(self):
        value, point = minimize_over_candidates(
            lambda x: 0.0, [(5.0,), (1.0,)])
        assert point == (5.0,)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            minimize_over_candidates(lambda x: x, [])

    def test_multi_argument(self):
        value, point = minimize_over_candidates(
            lambda a, b: a + b, [(1.0, 2.0), (0.0, 0.5)])
        assert point == (0.0, 0.5)


class TestCandidates1D:
    def test_includes_ends_and_interior_breakpoints(self):
        points = piecewise_candidates_1d(0.0, 2.0, [0.5, 1.5, 3.0])
        assert points == [0.0, 0.5, 1.5, 2.0]

    def test_deduplicates(self):
        points = piecewise_candidates_1d(0.0, 1.0, [0.0, 1.0, 0.5, 0.5])
        assert points == [0.0, 0.5, 1.0]

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            piecewise_candidates_1d(1.0, 0.0, [])

    def test_exact_on_piecewise_linear(self):
        # f(x) = |x - 0.7| + 0.5|x - 0.2| has its minimum at a
        # breakpoint; candidate evaluation must find it exactly.
        def f(x):
            return abs(x - 0.7) + 0.5 * abs(x - 0.2)

        candidates = piecewise_candidates_1d(0.0, 1.0, [0.7, 0.2])
        best = min(candidates, key=f)
        dense = min(np.linspace(0, 1, 100001), key=f)
        assert f(best) <= f(dense) + 1e-12


class TestBoxEdgeCandidates:
    def test_contains_corners(self):
        candidates = box_edge_candidates((0.0, 2.0), (0.0, 1.0),
                                         slope=1.0, intercepts=[])
        for corner in [(0.0, 0.0), (0.0, 1.0), (2.0, 0.0), (2.0, 1.0)]:
            assert corner in candidates

    def test_line_edge_intersections(self):
        # Line grt = 1·γ + 0.5 crosses γ=0 at grt=0.5 and γ=1 at 1.5.
        candidates = box_edge_candidates((0.0, 2.0), (0.0, 1.0),
                                         slope=1.0, intercepts=[0.5])
        assert (0.5, 0.0) in candidates
        assert (1.5, 1.0) in candidates

    def test_vertical_edge_intersections(self):
        # Same line crosses grt=1.0 at γ=0.5.
        candidates = box_edge_candidates((0.0, 1.0), (0.0, 1.0),
                                         slope=1.0, intercepts=[0.5])
        assert any(abs(g - 1.0) < 1e-12 and abs(c - 0.5) < 1e-12
                   for g, c in candidates)

    def test_out_of_box_lines_ignored(self):
        candidates = box_edge_candidates((0.0, 1.0), (0.0, 1.0),
                                         slope=1.0, intercepts=[10.0])
        assert len(candidates) == 4  # only corners

    def test_zero_slope(self):
        candidates = box_edge_candidates((0.0, 2.0), (0.0, 1.0),
                                         slope=0.0, intercepts=[1.0])
        # Horizontal-edge intersections at grt=1.0 for both γ edges.
        assert (1.0, 0.0) in candidates
        assert (1.0, 1.0) in candidates

    def test_empty_box_rejected(self):
        with pytest.raises(ConfigurationError):
            box_edge_candidates((1.0, 0.0), (0.0, 1.0), 1.0, [])

    def test_exact_on_2d_piecewise_linear(self):
        # Objective linear on each side of the line grt = 2γ − 0.3,
        # with a kink across it: minimum must be at a returned vertex.
        slope, intercept = 2.0, -0.3

        def f(grt, gamma):
            net = grt - slope * gamma - intercept
            return 0.3 * grt - 0.5 * gamma + 2.0 * max(net, 0.0)

        candidates = box_edge_candidates((0.0, 1.5), (0.0, 1.0),
                                         slope, [intercept])
        best = min(f(g, c) for g, c in candidates)
        grid = [(g, c) for g in np.linspace(0, 1.5, 301)
                for c in np.linspace(0, 1, 201)]
        dense_best = min(f(g, c) for g, c in grid)
        assert best <= dense_best + 1e-9
