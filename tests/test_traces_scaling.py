"""Trace scaling transforms (peak clipping, penetration, variation, β)."""

import numpy as np
import pytest

from repro.traces.scaling import (
    clip_demand_peaks,
    expand_system,
    rescale_renewable_penetration,
    reshape_demand_variation,
)
from tests.conftest import constant_traces
from repro.exceptions import ConfigurationError


def bursty_traces(n_slots: int = 48):
    rng = np.random.default_rng(0)
    ds = 1.0 + rng.uniform(0, 1.5, n_slots)
    dt = rng.uniform(0, 0.8, n_slots)
    return constant_traces(n_slots).replace(demand_ds=ds, demand_dt=dt)


class TestClipDemandPeaks:
    def test_caps_total_demand(self):
        traces = clip_demand_peaks(bursty_traces(), p_grid=2.0)
        assert np.all(traces.demand_total <= 2.0 + 1e-9)

    def test_preserves_mix_on_clipped_slots(self):
        raw = bursty_traces()
        clipped = clip_demand_peaks(raw, p_grid=2.0)
        over = raw.demand_total > 2.0
        ratio_raw = raw.demand_ds[over] / raw.demand_total[over]
        ratio_new = (clipped.demand_ds[over]
                     / clipped.demand_total[over])
        assert np.allclose(ratio_raw, ratio_new)

    def test_untouched_below_cap(self):
        raw = constant_traces(10, demand_ds=0.5, demand_dt=0.2)
        clipped = clip_demand_peaks(raw, p_grid=2.0)
        assert np.array_equal(raw.demand_ds, clipped.demand_ds)

    def test_records_meta(self):
        clipped = clip_demand_peaks(bursty_traces(), p_grid=2.0)
        assert clipped.meta["peak_clip_p_grid"] == 2.0
        assert clipped.meta["peak_clip_slots"] >= 0

    def test_zero_pgrid_rejected(self):
        with pytest.raises(ConfigurationError):
            clip_demand_peaks(bursty_traces(), p_grid=0.0)


class TestRenewablePenetration:
    def test_hits_target(self):
        traces = constant_traces(24, renewable=0.1)
        for target in (0.0, 0.25, 0.5, 1.0):
            scaled = rescale_renewable_penetration(traces, target)
            assert scaled.renewable_penetration == pytest.approx(target)

    def test_preserves_shape(self):
        rng = np.random.default_rng(1)
        traces = constant_traces(24).replace(
            renewable=rng.uniform(0, 1, 24))
        scaled = rescale_renewable_penetration(traces, 0.5)
        nonzero = traces.renewable > 0
        ratio = scaled.renewable[nonzero] / traces.renewable[nonzero]
        assert np.allclose(ratio, ratio[0])

    def test_zero_renewable_stays_zero(self):
        traces = constant_traces(8, renewable=0.0)
        scaled = rescale_renewable_penetration(traces, 0.5)
        assert np.all(scaled.renewable == 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            rescale_renewable_penetration(constant_traces(4), -0.1)


class TestDemandVariation:
    def test_identity_at_one(self):
        traces = bursty_traces()
        reshaped = reshape_demand_variation(traces, 1.0)
        assert np.allclose(traces.demand_ds, reshaped.demand_ds)

    def test_zero_scale_flattens(self):
        traces = bursty_traces()
        flat = reshape_demand_variation(traces, 0.0)
        assert flat.demand_std == pytest.approx(0.0, abs=1e-9)

    def test_mean_approximately_preserved(self):
        traces = bursty_traces()
        for scale in (0.5, 1.5):
            reshaped = reshape_demand_variation(traces, scale)
            assert reshaped.demand_total.mean() == pytest.approx(
                traces.demand_total.mean(), rel=0.05)

    def test_std_scales(self):
        traces = bursty_traces()
        half = reshape_demand_variation(traces, 0.5)
        assert half.demand_std == pytest.approx(
            traces.demand_std * 0.5, rel=0.1)

    def test_no_negative_demand(self):
        traces = bursty_traces()
        stretched = reshape_demand_variation(traces, 3.0)
        assert np.all(stretched.demand_ds >= 0.0)
        assert np.all(stretched.demand_dt >= 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            reshape_demand_variation(bursty_traces(), -1.0)


class TestExpandSystem:
    def test_scales_demand_and_renewable(self):
        traces = constant_traces(6, demand_ds=1.0, demand_dt=0.5,
                                 renewable=0.2)
        expanded = expand_system(traces, 3.0)
        assert np.allclose(expanded.demand_ds, 3.0)
        assert np.allclose(expanded.demand_dt, 1.5)
        assert np.allclose(expanded.renewable, 0.6)

    def test_prices_untouched(self):
        traces = constant_traces(6, price_rt=50.0)
        expanded = expand_system(traces, 5.0)
        assert np.allclose(expanded.price_rt, 50.0)

    def test_beta_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_system(constant_traces(4), 0.5)

    def test_meta_records_beta(self):
        expanded = expand_system(constant_traces(4), 2.0)
        assert expanded.meta["expansion_beta"] == 2.0
