"""Statistical trace validation suite."""

import numpy as np
import pytest

from repro.config.presets import paper_system_config
from repro.traces.library import make_paper_traces
from repro.traces.validation import (
    ValidationCheck,
    all_valid,
    daily_totals,
    hourly_profile,
    lag1_autocorrelation,
    validate_paper_traces,
)
from tests.conftest import constant_traces


class TestHelpers:
    def test_hourly_profile_shape(self):
        values = np.arange(48, dtype=float)
        profile = hourly_profile(values)
        assert profile.size == 24
        assert profile[0] == pytest.approx((0 + 24) / 2)

    def test_lag1_autocorrelation_persistent(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=2000)
        ar = np.zeros(2000)
        for i in range(1, 2000):
            ar[i] = 0.8 * ar[i - 1] + noise[i]
        assert lag1_autocorrelation(ar) > 0.6

    def test_lag1_autocorrelation_white(self):
        rng = np.random.default_rng(1)
        white = rng.normal(size=2000)
        assert abs(lag1_autocorrelation(white)) < 0.1

    def test_lag1_constant_is_zero(self):
        assert lag1_autocorrelation(np.ones(100)) == 0.0

    def test_lag1_tiny_series(self):
        assert lag1_autocorrelation(np.array([1.0, 2.0])) == 0.0

    def test_daily_totals(self):
        values = np.ones(50)
        totals = daily_totals(values)
        assert totals.size == 2
        assert np.allclose(totals, 24.0)


class TestPaperTraceValidation:
    @pytest.mark.parametrize("seed", [1, 42, 20130708])
    def test_paper_traces_pass_all_checks(self, seed):
        system = paper_system_config()
        traces = make_paper_traces(system, seed=seed)
        checks = validate_paper_traces(traces)
        failing = [str(c) for c in checks if not c.holds]
        assert all_valid(checks), "\n".join(failing)

    def test_flat_traces_fail_diurnal_checks(self):
        traces = constant_traces(744)
        checks = validate_paper_traces(traces)
        assert not all_valid(checks)
        by_name = {c.name: c for c in checks}
        assert not by_name["demand diurnal ratio"].holds

    def test_check_str_renders(self):
        check = ValidationCheck(name="x", holds=True, observed=1.0,
                                requirement="> 0")
        assert "OK" in str(check)
        check = ValidationCheck(name="x", holds=False, observed=1.0,
                                requirement="> 2")
        assert "FAIL" in str(check)

    def test_check_count_stable(self):
        # The validation suite is part of the public contract; adding
        # or removing checks should be a conscious decision.
        system = paper_system_config()
        traces = make_paper_traces(system, seed=9)
        assert len(validate_paper_traces(traces)) == 10
