"""Property-based tests: trace generators stay physical for any params."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.rng import make_rng
from repro.traces.demand import DemandModel, GoogleClusterDemandGenerator
from repro.traces.prices import NyisoLikePriceGenerator, PriceModel
from repro.traces.scaling import (
    clip_demand_peaks,
    rescale_renewable_penetration,
    reshape_demand_variation,
)
from repro.traces.solar import MidcLikeSolarGenerator, SolarModel
from tests.conftest import constant_traces

seeds = st.integers(min_value=0, max_value=2 ** 31)


@settings(max_examples=60, deadline=None)
@given(seed=seeds,
       capacity=st.floats(min_value=0.0, max_value=10.0),
       persistence=st.floats(min_value=0.05, max_value=0.95),
       sigma=st.floats(min_value=0.0, max_value=0.5))
def test_solar_always_physical(seed, capacity, persistence, sigma):
    model = SolarModel(capacity_mw=capacity,
                       cloud_persistence=persistence,
                       noise_sigma=sigma)
    series = MidcLikeSolarGenerator(model).generate(
        96, make_rng(seed, "solar"))
    assert np.all(series >= 0.0)
    assert np.all(series <= capacity + 1e-12)
    assert np.all(np.isfinite(series))


@settings(max_examples=60, deadline=None)
@given(seed=seeds,
       mean_price=st.floats(min_value=10.0, max_value=120.0),
       spike=st.floats(min_value=0.0, max_value=0.2),
       discount=st.floats(min_value=0.5, max_value=1.0))
def test_prices_always_within_caps(seed, mean_price, spike, discount):
    model = PriceModel(mean_price=mean_price, spike_probability=spike,
                       forward_discount=discount)
    rt, forward = NyisoLikePriceGenerator(model).generate(
        96, make_rng(seed, "prices"))
    for series in (rt, forward):
        assert np.all(series >= model.price_floor - 1e-12)
        assert np.all(series <= model.price_cap + 1e-12)
        assert np.all(np.isfinite(series))


@settings(max_examples=60, deadline=None)
@given(seed=seeds,
       rate=st.floats(min_value=0.0, max_value=20.0),
       cap=st.floats(min_value=0.1, max_value=3.0))
def test_demand_respects_caps(seed, rate, cap):
    model = DemandModel(batch_jobs_per_hour=rate, d_dt_max=cap)
    ds, dt = GoogleClusterDemandGenerator(model).generate(
        96, make_rng(seed, "demand"))
    assert np.all(ds >= 0.0)
    assert np.all(dt >= 0.0)
    assert np.all(dt <= cap + 1e-12)


@settings(max_examples=60, deadline=None)
@given(seed=seeds,
       penetration=st.floats(min_value=0.0, max_value=3.0),
       variation=st.floats(min_value=0.0, max_value=3.0),
       p_grid=st.floats(min_value=0.5, max_value=3.0))
def test_scaling_transforms_compose(seed, penetration, variation,
                                    p_grid):
    rng = np.random.default_rng(seed)
    base = constant_traces(48).replace(
        demand_ds=rng.uniform(0.2, 2.5, 48),
        demand_dt=rng.uniform(0.0, 1.0, 48),
        renewable=rng.uniform(0.0, 1.0, 48))
    traces = clip_demand_peaks(
        reshape_demand_variation(
            rescale_renewable_penetration(base, penetration),
            variation),
        p_grid)
    assert np.all(traces.demand_total <= p_grid + 1e-9)
    assert np.all(traces.demand_ds >= 0.0)
    assert np.all(traces.demand_dt >= 0.0)
    assert np.all(traces.renewable >= 0.0)
    if penetration > 0 and base.renewable.sum() > 0:
        # Renewable scaling is untouched by later demand transforms'
        # shape, only its ratio to (reshaped) demand changes.
        assert traces.renewable.sum() > 0
