"""Streaming trace sources: seed-deterministic chunked generation.

Every engine before this subsystem preloaded full horizons, so fleet
memory grew as ``O(B · horizon)``.  A :class:`TraceStream` instead
materializes :class:`~repro.traces.base.TraceSet` *windows* on demand:
the streaming batch engine (:mod:`repro.fleet.engine`) consumes one
chunk of columns at a time and peak memory scales with the chunk size.

Two sources are provided:

* :class:`StreamingPaperTraces` — the paper's synthetic trace family
  regenerated chunk by chunk.  Each stochastic sub-process (demand
  noise, batch-job counts, batch-job sizes, cloud regimes, solar
  jitter, solar noise, price noise, price spikes, the forward curve)
  draws from its *own* named substream (:mod:`repro.rng`) and threads
  explicit carry state
  (:class:`~repro.traces.demand.DemandChunkState` and friends) across
  chunks, so the concatenation of sequential windows is **bit-identical
  for every chunk size** — including one window covering the whole
  horizon.  That invariance is what lets ``tests/equivalence/`` compare
  the streamed engine against the in-memory engine exactly.

  Note the draw *interleaving* differs from
  :func:`~repro.traces.library.make_paper_traces` (which shares one
  generator per component), so the ``"stream"`` family is its own
  deterministic trace universe: same statistics, different realization
  per seed.  The per-slot references for this discipline are the
  ``*_stream_chunk`` methods in :mod:`repro.traces` (one batched draw
  per substream per window, every transcendental via NumPy), designed
  so the vectorized kernels below reproduce them bit for bit.

* :class:`BatchTraceStream` — all ``B`` scenarios of a fleet shard
  behind **one** cursor.  Each ``read`` emits a whole
  :class:`~repro.traces.base.TraceBlock` of ``(B, chunk)`` columns
  through the vectorized kernels
  (:class:`~repro.traces.demand.DemandTraceKernel`,
  :class:`~repro.traces.solar.SolarTraceKernel`,
  :class:`~repro.traces.prices.PriceTraceKernel`) — one kernel pass
  per window instead of ``B × chunk`` Python loop iterations, and
  bit-identical to ``B`` independent :class:`StreamingPaperTraces`
  cursors (the scalar reference path the equivalence harness runs).

* :class:`ArrayTraceStream` — wraps an already-materialized
  :class:`TraceSet` so in-memory recipes flow through the same cursor
  protocol (no memory savings; used for oracle controllers and the
  ``"paper"`` recipe).

Windows are served strictly in order — the simulation consumes slots
sequentially, and sequential generation is what makes carry state
cheap.  ``open()`` returns a fresh cursor, so one stream description
can be replayed any number of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.exceptions import ConfigurationError, TraceError
from repro.rng import RngFactory
from repro.traces.base import TraceBlock, TraceSet
from repro.traces.demand import (
    DemandChunkState,
    DemandModel,
    DemandTraceKernel,
    GoogleClusterDemandGenerator,
)
from repro.traces.prices import (
    NyisoLikePriceGenerator,
    PriceChunkState,
    PriceModel,
    PriceTraceKernel,
)
from repro.traces.scaling import clip_demand_peaks
from repro.traces.solar import (
    MidcLikeSolarGenerator,
    SolarChunkState,
    SolarModel,
    SolarTraceKernel,
)

#: Substream names, in the order one scenario's generators are minted.
#: Shared by the scalar cursor and the batch cursor so both consume
#: identically-seeded streams per scenario.
_SUBSTREAMS = (
    "stream:demand_ds",
    "stream:demand_dt",
    "stream:demand_dt:sizes",
    "stream:solar:clouds",
    "stream:solar:jitter",
    "stream:solar:noise",
    "stream:price_rt",
    "stream:price_rt:spikes",
    "stream:price_lt",
)

#: Default window size (fine slots) used by ``materialize``.
DEFAULT_MATERIALIZE_CHUNK = 256


class TraceCursor:
    """Sequential reader over one stream (abstract).

    ``read(n)`` returns the next ``n`` slots as a :class:`TraceSet`
    window; a cursor never rewinds.
    """

    def read(self, n_slots: int) -> TraceSet:
        raise NotImplementedError

    @property
    def position(self) -> int:
        raise NotImplementedError


class TraceStream:
    """A replayable chunked trace source (abstract).

    Concrete streams know their horizon length and mint independent
    sequential cursors via :meth:`open`.
    """

    @property
    def n_slots(self) -> int:
        raise NotImplementedError

    def open(self) -> TraceCursor:
        raise NotImplementedError

    def windows(self, chunk_slots: int) -> Iterator[TraceSet]:
        """Iterate the whole horizon in windows of ``chunk_slots``."""
        if chunk_slots < 1:
            raise ConfigurationError(f"chunk must be >= 1 slot, got {chunk_slots}")
        cursor = self.open()
        position = 0
        while position < self.n_slots:
            take = min(chunk_slots, self.n_slots - position)
            yield cursor.read(take)
            position += take

    def materialize(self,
                    chunk_slots: int = DEFAULT_MATERIALIZE_CHUNK
                    ) -> TraceSet:
        """The full horizon as one :class:`TraceSet`.

        Defined as the concatenation of sequential windows, which by
        the chunk-size invariance equals the output for *any* chunking
        — this is the in-memory reference the equivalence harness runs
        through :class:`~repro.sim.batch.BatchSimulator`.

        Window metadata that counts per-window events aggregates over
        the horizon: ``peak_clip_slots`` (written by the ``Pgrid``
        peak clip) is the *sum* of the windows' clip counts, matching
        what one full-horizon clip would have recorded.
        """
        windows = list(self.windows(chunk_slots))
        meta = dict(windows[0].meta)
        clip_counts = [w.meta["peak_clip_slots"] for w in windows
                       if "peak_clip_slots" in w.meta]
        if clip_counts:
            meta["peak_clip_slots"] = int(sum(clip_counts))
        return TraceSet(
            demand_ds=np.concatenate([w.demand_ds for w in windows]),
            demand_dt=np.concatenate([w.demand_dt for w in windows]),
            renewable=np.concatenate([w.renewable for w in windows]),
            price_rt=np.concatenate([w.price_rt for w in windows]),
            price_lt_hourly=np.concatenate(
                [w.price_lt_hourly for w in windows]),
            meta=meta,
        )


class _ArrayCursor(TraceCursor):
    """Cursor over a resident :class:`TraceSet`.

    Every window of one cursor shares the source's metadata through a
    single read-only view — window meta is identical across windows,
    and profiling showed the per-window ``dict`` copies dominating
    cursor overhead at small chunk sizes.
    """

    def __init__(self, traces: TraceSet):
        self._traces = traces
        self._meta = MappingProxyType(traces.meta)
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def read(self, n_slots: int) -> TraceSet:
        start = self._position
        stop = start + n_slots
        if stop > self._traces.n_slots:
            raise TraceError(
                f"read past end of stream: [{start}, {stop}) of "
                f"{self._traces.n_slots} slots")
        self._position = stop
        traces = self._traces
        return TraceSet(
            demand_ds=traces.demand_ds[start:stop],
            demand_dt=traces.demand_dt[start:stop],
            renewable=traces.renewable[start:stop],
            price_rt=traces.price_rt[start:stop],
            price_lt_hourly=traces.price_lt_hourly[start:stop],
            meta=self._meta,
        )


class ArrayTraceStream(TraceStream):
    """A resident :class:`TraceSet` behind the stream protocol."""

    def __init__(self, traces: TraceSet):
        self._traces = traces

    @property
    def n_slots(self) -> int:
        return self._traces.n_slots

    @property
    def seed(self) -> int | None:
        """The generating seed, when the trace meta recorded one.

        The streamed engine stamps ``run.stream.seed`` into scenario
        records; materialized windows carry the seed through their
        meta so array-backed replays keep the provenance column.
        """
        seed = self._traces.meta.get("seed")
        return None if seed is None else int(seed)

    def open(self) -> TraceCursor:
        return _ArrayCursor(self._traces)

    def materialize(self, chunk_slots: int = DEFAULT_MATERIALIZE_CHUNK
                    ) -> TraceSet:
        return self._traces


@dataclass
class _PaperStreamState:
    """All carry state of one :class:`StreamingPaperTraces` cursor."""

    demand: DemandChunkState = field(default_factory=DemandChunkState)
    solar: SolarChunkState = field(default_factory=SolarChunkState)
    price: PriceChunkState = field(default_factory=PriceChunkState)


def _substream_rngs(seed: int) -> dict[str, np.random.Generator]:
    """One fresh generator per named substream for one scenario."""
    factory = RngFactory(seed)
    return {name: factory.stream(name) for name in _SUBSTREAMS}


class _PaperStreamCursor(TraceCursor):
    """Sequential scalar-reference cursor.

    Holds one dedicated :class:`numpy.random.Generator` per stochastic
    sub-process (created once, advanced strictly per slot) plus the
    AR(1)/Markov carry state, so successive ``read`` calls continue
    every process exactly where the previous window left it.  This is
    the per-slot reference path: :class:`BatchTraceStream` must match
    it bit for bit, and ``materialize`` — hence the in-memory engine
    the equivalence harness compares against — runs through it.
    """

    def __init__(self, stream: "StreamingPaperTraces"):
        self._stream = stream
        self._rngs = _substream_rngs(stream.seed)
        self._state = _PaperStreamState()
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def read(self, n_slots: int) -> TraceSet:
        stream = self._stream
        start = self._position
        if start + n_slots > stream.n_slots:
            raise TraceError(
                f"read past end of stream: [{start}, {start + n_slots}) "
                f"of {stream.n_slots} slots")
        state = self._state
        rngs = self._rngs
        demand_gen = stream.demand_generator
        demand_ds = demand_gen.delay_sensitive_stream_chunk(
            start, n_slots, rngs["stream:demand_ds"], state.demand)
        demand_dt = demand_gen.delay_tolerant_stream_chunk(
            start, n_slots, rngs["stream:demand_dt"],
            rngs["stream:demand_dt:sizes"])
        renewable = stream.solar_generator.generate_chunk(
            start, n_slots, rngs["stream:solar:clouds"],
            rngs["stream:solar:jitter"], rngs["stream:solar:noise"],
            state.solar)
        price_gen = stream.price_generator
        price_rt = price_gen.real_time_stream_chunk(
            start, n_slots, rngs["stream:price_rt"],
            rngs["stream:price_rt:spikes"], state.price)
        price_lt = price_gen.forward_curve_chunk(
            start, n_slots, rngs["stream:price_lt"])
        self._position = start + n_slots

        window = TraceSet(
            demand_ds=demand_ds,
            demand_dt=demand_dt,
            renewable=renewable,
            price_rt=price_rt,
            price_lt_hourly=price_lt,
            meta={"seed": stream.seed, "source": "StreamingPaperTraces",
                  "window_start": start},
        )
        if stream.clip_p_grid is not None and stream.clip_p_grid > 0:
            window = clip_demand_peaks(window, stream.clip_p_grid)
        return window


class StreamingPaperTraces(TraceStream):
    """The paper's trace family, generated chunk by chunk.

    Parameters
    ----------
    n_slots:
        Horizon length in fine slots.
    seed:
        Root seed; every sub-process derives an independent substream
        from it (see module docstring for the seed discipline).
    demand_model / solar_model / price_model:
        Component model overrides (defaults mirror
        :func:`~repro.traces.library.make_paper_traces`).
    clip_p_grid:
        When positive, apply the paper's ``Pgrid`` peak clipping to
        every window (the clip is per-slot, hence chunk-invariant).
        ``None`` disables clipping.
    """

    def __init__(self, n_slots: int, seed: int,
                 demand_model: DemandModel | None = None,
                 solar_model: SolarModel | None = None,
                 price_model: PriceModel | None = None,
                 clip_p_grid: float | None = None):
        if n_slots < 1:
            raise ConfigurationError(f"horizon must have >= 1 slot, got {n_slots}")
        self._n_slots = int(n_slots)
        self.seed = int(seed)
        self.demand_model = demand_model or DemandModel()
        self.solar_model = solar_model or SolarModel()
        self.price_model = price_model or PriceModel()
        self.clip_p_grid = clip_p_grid
        self.demand_generator = GoogleClusterDemandGenerator(
            self.demand_model)
        self.solar_generator = MidcLikeSolarGenerator(self.solar_model)
        self.price_generator = NyisoLikePriceGenerator(self.price_model)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def open(self) -> TraceCursor:
        return _PaperStreamCursor(self)


class _BatchPaperCursor:
    """One cursor serving all ``B`` scenarios of a batch stream.

    Structured exactly like ``B`` :class:`_PaperStreamCursor` objects —
    the same named substreams per scenario, the same carry state — but
    the state lives in ``(B,)`` arrays and every ``read`` is one
    vectorized kernel pass per component instead of ``B × chunk``
    Python iterations.
    """

    def __init__(self, stream: "BatchTraceStream"):
        self._stream = stream
        batch = stream.n_scenarios
        if rng_mod.BATCHED_SEEDING:
            # One vectorized seed-hashing pass for all B x 9 substream
            # generators — streams bit-identical to the per-generator
            # construction below (see repro.rng.substream_rngs_batch).
            rngs = rng_mod.substream_rngs_batch(
                [source.seed for source in stream.streams], _SUBSTREAMS)
        else:
            rngs = {name: [] for name in _SUBSTREAMS}
            for source in stream.streams:
                for name, rng in _substream_rngs(source.seed).items():
                    rngs[name].append(rng)
        self._rngs = rngs
        self._demand_level = np.zeros(batch)
        self._cloud_state = np.full(batch, -1, dtype=np.int64)
        self._solar_level = np.zeros(batch)
        self._price_level = np.zeros(batch)
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def read(self, n_slots: int) -> TraceBlock:
        stream = self._stream
        start = self._position
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        if start + n_slots > stream.n_slots:
            raise TraceError(
                f"read past end of stream: [{start}, {start + n_slots}) "
                f"of {stream.n_slots} slots")
        rngs = self._rngs
        demand_ds, self._demand_level = \
            stream.demand_kernel.sensitive_block(
                start, n_slots, rngs["stream:demand_ds"],
                self._demand_level)
        demand_dt = stream.demand_kernel.tolerant_block(
            start, n_slots, rngs["stream:demand_dt"],
            rngs["stream:demand_dt:sizes"])
        renewable, self._cloud_state, self._solar_level = \
            stream.solar_kernel.block(
                start, n_slots, rngs["stream:solar:clouds"],
                rngs["stream:solar:jitter"], rngs["stream:solar:noise"],
                self._cloud_state, self._solar_level)
        price_rt, self._price_level = \
            stream.price_kernel.real_time_block(
                start, n_slots, rngs["stream:price_rt"],
                rngs["stream:price_rt:spikes"], self._price_level)
        price_lt = stream.price_kernel.forward_block(
            start, n_slots, rngs["stream:price_lt"])
        self._position = start + n_slots

        meta = {"seeds": stream.seeds, "source": "BatchTraceStream",
                "window_start": start}
        clip = stream.clip_p_grid
        if clip is not None:
            # Vectorized twin of clip_demand_peaks: same per-slot scale
            # (p_grid / total on over-cap slots, 1 elsewhere), applied
            # per scenario; rows without a cap never trigger (inf).
            total = demand_ds + demand_dt
            over = total > clip[:, None]
            scale = np.ones_like(total)
            np.divide(np.broadcast_to(clip[:, None], total.shape),
                      total, out=scale, where=over)
            demand_ds = demand_ds * scale
            demand_dt = demand_dt * scale
            meta["peak_clip_slots"] = over.sum(axis=1)
        return TraceBlock(
            demand_ds=demand_ds,
            demand_dt=demand_dt,
            renewable=renewable,
            price_rt=price_rt,
            price_lt_hourly=price_lt,
            meta=meta,
        )


class BatchTraceStream:
    """All scenarios of a fleet shard behind one vectorized cursor.

    Wraps ``B`` :class:`StreamingPaperTraces` descriptions and serves
    their windows as :class:`~repro.traces.base.TraceBlock` batches:
    one kernel call per component per window.  Output is bit-identical
    to reading the ``B`` per-scenario cursors independently (the scalar
    reference path), which is what the streamed fleet engine's
    equivalence gate relies on.

    Use :meth:`for_streams` to build one when a shard's trace sources
    allow it (every source must be a :class:`StreamingPaperTraces`);
    heterogeneous models and per-source ``clip_p_grid`` values are
    fine — parameters stack into per-scenario vectors.
    """

    def __init__(self, streams: Sequence[StreamingPaperTraces]):
        if not streams:
            raise ConfigurationError("batch stream needs at least one scenario")
        for source in streams:
            if not isinstance(source, StreamingPaperTraces):
                raise TypeError(
                    f"BatchTraceStream requires StreamingPaperTraces "
                    f"sources, got {type(source).__name__}")
        self.streams = tuple(streams)
        self.seeds = tuple(source.seed for source in self.streams)
        self.demand_kernel = DemandTraceKernel(
            [source.demand_model for source in self.streams])
        self.solar_kernel = SolarTraceKernel(
            [source.solar_model for source in self.streams])
        self.price_kernel = PriceTraceKernel(
            [source.price_model for source in self.streams])
        clips = [source.clip_p_grid for source in self.streams]
        if any(clip is not None and clip > 0 for clip in clips):
            self.clip_p_grid = np.array(
                [clip if (clip is not None and clip > 0) else np.inf
                 for clip in clips])
        else:
            self.clip_p_grid = None

    @classmethod
    def for_streams(cls, streams: Sequence[TraceStream]
                    ) -> "BatchTraceStream | None":
        """A batch stream over ``streams``, or ``None`` if any source
        is not kernel-backed (the caller falls back to per-scenario
        cursors)."""
        if not streams or not all(
                isinstance(source, StreamingPaperTraces)
                for source in streams):
            return None
        return cls(streams)

    @property
    def n_scenarios(self) -> int:
        return len(self.streams)

    @property
    def n_slots(self) -> int:
        """Slots every scenario can serve (the shortest horizon)."""
        return min(source.n_slots for source in self.streams)

    def open(self) -> _BatchPaperCursor:
        return _BatchPaperCursor(self)
