"""Validated configuration objects for the DPSS system and controllers.

Two layers of configuration mirror the paper's separation of concerns:

* :class:`~repro.config.system.SystemConfig` — the *physical* datacenter
  power supply system: horizon, markets, grid cap, UPS battery, demand
  caps.  Section II of the paper.
* :class:`~repro.config.control.SmartDPSSConfig` — the *algorithmic*
  knobs of the online controller: ``V``, ``ε``, objective mode, market
  usage.  Sections III-IV of the paper.

:mod:`repro.config.presets` builds the exact parameterization of the
paper's evaluation (Section VI-A).
"""

from repro.config.control import ObjectiveMode, SmartDPSSConfig
from repro.config.presets import (
    PAPER_BATTERY_MINUTES,
    PAPER_PEAK_DEMAND_MW,
    paper_controller_config,
    paper_system_config,
)
from repro.config.system import SystemConfig

__all__ = [
    "SystemConfig",
    "SmartDPSSConfig",
    "ObjectiveMode",
    "paper_system_config",
    "paper_controller_config",
    "PAPER_BATTERY_MINUTES",
    "PAPER_PEAK_DEMAND_MW",
]
