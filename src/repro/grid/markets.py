"""Two-timescale grid markets (paper Section II-A.1).

Both markets validate prices against the cap ``Pmax`` and keep a
purchase ledger (energy, spend, per-slot breakdown) so experiments can
decompose the operational cost exactly as the paper's cost model does:

    Cost(τ) = gbef(t)/T · plt(t) + grt(τ) · prt(τ) + n(τ)·Cb + W(τ).

The :class:`LongTermMarket` sells one block ``gbef(t)`` per coarse slot,
delivered evenly (``gbef/T`` per fine slot); the :class:`RealTimeMarket`
sells per fine slot.  Neither enforces the interconnect cap — that is
physical, not commercial, and lives in
:class:`~repro.grid.interconnect.GridInterconnect`.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, InfeasibleActionError


class MarketLedger:
    """Energy/spend accounting shared by both markets."""

    def __init__(self, name: str):
        self.name = name
        self._energy = 0.0
        self._spend = 0.0
        self._transactions = 0

    @property
    def energy(self) -> float:
        """Total MWh purchased so far."""
        return self._energy

    @property
    def spend(self) -> float:
        """Total dollars spent so far."""
        return self._spend

    @property
    def transactions(self) -> int:
        """Number of non-zero purchases recorded."""
        return self._transactions

    @property
    def average_price(self) -> float:
        """Volume-weighted average purchase price ($/MWh)."""
        if self._energy == 0:
            return 0.0
        return self._spend / self._energy

    def record(self, energy: float, price: float) -> float:
        """Record a purchase, returning its cost."""
        cost = energy * price
        if energy > 0:
            self._energy += energy
            self._spend += cost
            self._transactions += 1
        return cost

    def reset(self) -> None:
        """Clear all accumulators for a fresh horizon."""
        self._energy = 0.0
        self._spend = 0.0
        self._transactions = 0

    def __repr__(self) -> str:
        return (f"MarketLedger({self.name!r}, energy={self._energy:.3f}, "
                f"spend={self._spend:.2f})")


class _MarketBase:
    """Validation shared by the two markets."""

    def __init__(self, price_cap: float, name: str):
        if price_cap <= 0:
            raise ConfigurationError(f"price cap must be > 0, got {price_cap}")
        self.price_cap = price_cap
        self.ledger = MarketLedger(name)

    def _check(self, energy: float, price: float) -> None:
        if energy < 0:
            raise InfeasibleActionError(
                f"{self.ledger.name}: purchase must be >= 0, got {energy}")
        if not 0 <= price <= self.price_cap * (1 + 1e-9):
            raise InfeasibleActionError(
                f"{self.ledger.name}: price {price} outside "
                f"[0, {self.price_cap}]")

    def reset(self) -> None:
        """Clear the ledger for a fresh horizon."""
        self.ledger.reset()


class LongTermMarket(_MarketBase):
    """Long-term-ahead market: one block per coarse slot.

    A block ``gbef(t)`` bought at price ``plt(t)`` is delivered evenly
    over the coarse slot's ``T`` fine slots; the paper books its cost
    per fine slot as ``gbef/T · plt`` (summing to ``gbef · plt``).
    """

    def __init__(self, price_cap: float,
                 fine_slots_per_coarse: int):
        super().__init__(price_cap, "long-term")
        if fine_slots_per_coarse < 1:
            raise ConfigurationError(
                f"T must be >= 1, got {fine_slots_per_coarse}")
        self.fine_slots_per_coarse = fine_slots_per_coarse
        self._current_block = 0.0
        self._current_price = 0.0

    def purchase_block(self, energy: float, price: float) -> None:
        """Commit the coarse slot's advance purchase ``gbef(t)``."""
        self._check(energy, price)
        self._current_block = energy
        self._current_price = price
        self.ledger.record(energy, price)

    @property
    def per_fine_slot_energy(self) -> float:
        """Scheduled delivery ``gbef(t)/T`` for each fine slot."""
        return self._current_block / self.fine_slots_per_coarse

    @property
    def per_fine_slot_cost(self) -> float:
        """Booked cost ``gbef(t)/T · plt(t)`` for each fine slot."""
        return self.per_fine_slot_energy * self._current_price

    @property
    def current_block(self) -> float:
        """Current coarse slot's committed energy."""
        return self._current_block

    @property
    def current_price(self) -> float:
        """Current coarse slot's contract price."""
        return self._current_price

    def reset(self) -> None:
        super().reset()
        self._current_block = 0.0
        self._current_price = 0.0


class RealTimeMarket(_MarketBase):
    """Real-time market: per-fine-slot purchases ``grt(τ)``."""

    def __init__(self, price_cap: float):
        super().__init__(price_cap, "real-time")

    def purchase(self, energy: float, price: float) -> float:
        """Buy ``grt(τ)`` at ``prt(τ)``; returns the slot cost."""
        self._check(energy, price)
        return self.ledger.record(energy, price)
