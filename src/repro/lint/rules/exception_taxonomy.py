"""R003 exception-taxonomy: raise typed repro errors, not builtins.

Every error this library raises derives from
:class:`repro.exceptions.ReproError`, so callers (and the fleet
runner's retry/bisect/quarantine machinery) can distinguish library
failures from genuine bugs with one ``except`` clause, and quarantine
records carry a stable ``type`` field.  A bare ``raise ValueError``
punches a hole in that contract.

Two checks:

* **Forbidden raises** — ``raise ValueError/RuntimeError/Exception``
  anywhere under ``src/repro`` (except ``repro/exceptions.py``
  itself).  Route through the taxonomy instead: invalid
  parameters/inputs → ``ConfigurationError``; an operation invoked
  before the state it needs exists → ``StateError``; a control action
  violating physics → ``InfeasibleActionError``; solver trouble →
  ``SolverError`` and friends.  ``TypeError`` stays allowed by
  convention: a wrong *type* is a programming error at the call site,
  not a library failure mode.
* **Pickle-reconstructible exceptions** — fleet errors cross the
  process-pool boundary, and the default ``Exception.__reduce__``
  reconstructs as ``cls(*self.args)`` (usually just the message).  A
  custom exception ``__init__`` with a *required* extra parameter
  breaks that round-trip at unpickle time; one with optional extras
  silently drops them unless ``__reduce__`` is defined.  The rule
  therefore flags any ``*Error``/``*Exception`` class whose
  ``__init__`` takes required parameters beyond the message and which
  does not define ``__reduce__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleContext, Rule

FORBIDDEN_RAISES = frozenset({"ValueError", "RuntimeError", "Exception"})

#: Taxonomy hints keyed by forbidden name, for the finding message.
_HINTS = {
    "ValueError": "ConfigurationError (invalid parameter/input), "
                  "StateError (missing prior step) or "
                  "InfeasibleActionError (physics violation)",
    "RuntimeError": "StateError (operation before its required prior "
                    "step) or a more specific ReproError",
    "Exception": "a concrete repro.exceptions type",
}


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _looks_like_exception_class(node: ast.ClassDef) -> bool:
    if node.name.endswith(("Error", "Exception")):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else \
            base.id if isinstance(base, ast.Name) else ""
        if name.endswith(("Error", "Exception")):
            return True
    return False


def _required_extra_args(init: ast.FunctionDef) -> list[str]:
    """Parameters beyond (self, message) that lack a default."""
    args = init.args
    positional = args.posonlyargs + args.args
    first_with_default = len(positional) - len(args.defaults)
    # Index 0 is self, index 1 the message; anything past that without
    # a default makes cls(*(message,)) unreconstructible.
    required = [arg.arg for index, arg in enumerate(positional)
                if index >= 2 and index < first_with_default]
    required += [arg.arg
                 for arg, default in zip(args.kwonlyargs,
                                         args.kw_defaults)
                 if default is None]
    return required


class ExceptionTaxonomy(Rule):
    id = "R003"
    name = "exception-taxonomy"
    summary = ("no bare ValueError/RuntimeError/Exception raises; "
               "custom exceptions must survive the pickle round-trip")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.posix.endswith("repro/exceptions.py"):
            forbidden: frozenset = frozenset()
        else:
            forbidden = FORBIDDEN_RAISES
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in forbidden:
                    yield self.finding(
                        ctx, node,
                        f"`raise {name}` bypasses the repro.exceptions "
                        f"taxonomy; use {_HINTS[name]}")
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext,
                     node: ast.ClassDef) -> Iterator[Finding]:
        if not _looks_like_exception_class(node):
            return
        init = None
        has_reduce = False
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                if item.name == "__init__":
                    init = item
                elif item.name == "__reduce__":
                    has_reduce = True
        if init is None or has_reduce:
            return
        required = _required_extra_args(init)
        if required:
            yield self.finding(
                ctx, init,
                f"exception {node.name}.__init__ takes required extra "
                f"parameter(s) {required} but defines no __reduce__; "
                "the default pickle round-trip reconstructs as "
                "cls(*args) and will fail in the process pool — give "
                "the extras defaults or define __reduce__")


RULE = ExceptionTaxonomy()
